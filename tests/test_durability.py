"""Durable shard state: WAL/checkpoint store, correlated-failure recovery.

Pinned contracts:

* **Store semantics** — WAL replay is last-write-wins over the
  checkpoint: own-loss records fence queries out, home records
  add/remove rows, unchanged state snapshots are deduplicated, and a
  checkpoint truncates the journal;
* **Correlated recovery** — a shard crashing *together with its
  replication buddy* (nobody covers it) and a whole-tier restart both
  rebuild their tables from checkpoint + WAL: no query is lost, no
  amnesia, and ``healthy_exactness`` stays exactly 1.0 — recovery lag
  is accounted through the degraded channel, never hidden;
* **Amnesia contrast** — the identical failure schedule without a
  store drops the dead shards' rows and re-bootstraps (the knob buys
  state survival, not silent correctness);
* **Zero-fault bit-identity** — the durability knobs are tuning
  parameters: a plan carrying only ``checkpoint_interval`` /
  ``wal_replay_per_tick`` stays disabled and is indistinguishable
  from ``shard_faults=None``.
"""

from __future__ import annotations

import pytest

from repro.api import (
    RunConfig,
    ShardConfig,
    ShardFaultPlan,
    WorkloadSpec,
    build_system,
    build_workload,
    run_once,
)
from repro.errors import FaultError
from repro.obs import RingSink, Telemetry, Tracer, protocol_events
from repro.server.durability import DurabilityManager, ShardStore

SPEC = WorkloadSpec(
    n_objects=250, n_queries=3, k=4, ticks=48, warmup_ticks=4, seed=13
)

FT_PARAMS = {
    "fault_tolerant": True,
    "ack_timeout": 2,
    "lease_ticks": 8,
    "violation_retry": 2,
}

#: Coverage-defeating schedule: shard 0 and its buddy (1) crash
#: together mid-run, and later the whole tier restarts at once — the
#: two failure classes buddy replication alone cannot survive.
CORRELATED = dict(
    crash_groups=(((0, 1), 12, 20),),
    full_restarts=((32, 35),),
    heartbeat_timeout=3,
)


class TestShardStore:
    def test_wal_replay_is_last_write_wins(self):
        store = ShardStore(0)
        store.append(1, "own", 7, {"qid": 7, "answer": (1,)})
        store.append(2, "state", 7, {"qid": 7, "answer": (1, 2)})
        store.append(3, "home", 40, True)
        store.append(4, "home", 41, True)
        store.append(5, "home", 40, None)
        view = store.recover()
        assert view.queries == {7: {"qid": 7, "answer": (1, 2)}}
        assert view.homes == frozenset({41})
        assert view.replayed_records == 5
        assert view.replayed_bytes == store.wal_bytes

    def test_own_loss_fences_query_out(self):
        store = ShardStore(0)
        store.append(1, "own", 7, {"qid": 7})
        store.append(2, "own", 7, None)
        assert store.recover().queries == {}
        # A later checkpoint-era query + own-loss in the WAL: the fence
        # wins over the checkpoint row too.
        store.checkpoint(3, {8: {"qid": 8}}, frozenset({1}))
        store.append(4, "own", 8, None)
        view = store.recover()
        assert view.queries == {} and view.homes == frozenset({1})

    def test_own_gain_does_not_clobber_newer_state(self):
        # A handoff-gain record carries the state at gain time; a
        # replayed older 'own' must not overwrite a newer 'state'.
        store = ShardStore(0)
        store.append(1, "state", 7, {"v": 2})
        store.append(2, "own", 7, {"v": 1})
        assert store.recover().queries == {7: {"v": 2}}

    def test_state_dedup(self):
        store = ShardStore(0)
        assert store.journal_state(1, 7, {"v": 1}) is not None
        assert store.journal_state(2, 7, {"v": 1}) is None
        assert store.journal_state(3, 7, {"v": 2}) is not None
        assert store.wal_records == 2

    def test_checkpoint_truncates_and_reseeds_dedup(self):
        store = ShardStore(0)
        store.journal_state(1, 7, {"v": 1})
        store.checkpoint(2, {7: {"v": 1}}, frozenset({9}))
        assert store.wal_records == 0
        # Unchanged snapshot after the checkpoint is still a no-op.
        assert store.journal_state(3, 7, {"v": 1}) is None
        view = store.recover()
        assert view.checkpoint_tick == 2
        assert view.queries == {7: {"v": 1}}
        assert view.homes == frozenset({9})


class TestDurabilityManager:
    def test_due_cadence(self):
        dm = DurabilityManager(4, interval=5)
        assert not dm.due(0)
        assert dm.due(5) and dm.due(10)
        assert not dm.due(7)

    def test_replay_ticks_rate_limit(self):
        dm = DurabilityManager(4, interval=5, replay_per_tick=10)
        assert dm.replay_ticks(0) == 0
        assert dm.replay_ticks(10) == 0  # fits in one tick's budget
        assert dm.replay_ticks(11) == 1
        assert dm.replay_ticks(30) == 2
        assert DurabilityManager(4, 5).replay_ticks(10 ** 6) == 0

    def test_counters_accumulate(self):
        dm = DurabilityManager(2, interval=5)
        dm.journal_own(0, 1, 7, {"qid": 7})
        dm.journal_home(1, 1, 40, True)
        dm.journal_state(0, 2, 7, {"qid": 7, "v": 1})
        dm.journal_state(0, 3, 7, {"qid": 7, "v": 1})  # dedup: no append
        assert dm.wal_appends == 3
        assert dm.wal_bytes_total == sum(dm.wal_bytes_by_shard())
        assert dm.wal_records_by_shard() == [2, 1]
        dm.checkpoint(0, 5, {7: {"qid": 7}}, frozenset())
        assert dm.checkpoints == 1 and dm.checkpoint_bytes_total > 0
        assert dm.wal_records_by_shard() == [0, 1]
        view = dm.recover(1)
        assert dm.recoveries == 1
        assert dm.replayed_records == view.replayed_records == 1


class TestPlanKnobs:
    def test_correlated_knobs_enable_the_plan(self):
        assert ShardFaultPlan(crash_groups=(((0, 1), 5, 9),)).enabled
        assert ShardFaultPlan(full_restarts=((5, 8),)).enabled

    def test_durability_knobs_alone_do_not_enable(self):
        plan = ShardFaultPlan(checkpoint_interval=5, wal_replay_per_tick=10)
        assert not plan.enabled

    def test_is_down_covers_groups_and_full_restarts(self):
        plan = ShardFaultPlan(
            crash_groups=(((0, 2), 10, 14),), full_restarts=((20, 22),)
        )
        assert plan.is_down(0, 10) and plan.is_down(2, 13)
        assert not plan.is_down(1, 10) and not plan.is_down(0, 14)
        for s in range(8):
            assert plan.is_down(s, 20) and plan.is_down(s, 21)
            assert not plan.is_down(s, 22)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_groups": (((), 5, 9),)},
            {"crash_groups": (((0, 0), 5, 9),)},
            {"crash_groups": (((0, 1), 9, 9),)},
            {"full_restarts": ((5, 5),)},
            {"full_restarts": ((-1, 5),)},
            {"checkpoint_interval": 0},
            {"wal_replay_per_tick": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(FaultError):
            ShardFaultPlan(**kwargs)


def _durable_plan(**over):
    kwargs = dict(CORRELATED, checkpoint_interval=5, wal_replay_per_tick=25)
    kwargs.update(over)
    return ShardFaultPlan(seed=3, **kwargs)


def _measure(plan):
    cfg = RunConfig(
        "DKNN-P",
        shard=ShardConfig(shards=2, faults=plan),
        params=dict(FT_PARAMS),
    )
    return run_once(cfg, SPEC, accuracy_every=1)


class TestCorrelatedRecovery:
    """The acceptance pin: shard + buddy crash, then a full-tier
    restart, and the durable store brings every query back."""

    def test_wal_recovery_retains_every_query(self):
        m = _measure(_durable_plan())
        # Cold restarts happened (the buddy-pair group defeats
        # coverage; the full restart defeats everything)...
        assert m.extra["cold_restarts"] >= 4
        # ... and every one of them recovered from the store: the
        # full-tier restart alone guarantees all queries pass through
        # a WAL recovery.
        assert m.extra["amnesia_q"] == 0
        assert m.extra["recovered_q"] >= SPEC.n_queries
        assert m.extra["checkpoints"] > 0
        # Honesty through recovery: answers the tier vouched for were
        # exact on every sampled tick.
        assert m.extra["healthy_exactness"] == 1.0
        assert m.extra["degraded_frac"] < 1.0

    def test_amnesia_without_store(self):
        m = _measure(_durable_plan(
            checkpoint_interval=None, wal_replay_per_tick=None
        ))
        assert "checkpoints" not in m.extra
        assert m.extra["amnesia_q"] >= SPEC.n_queries
        assert m.extra.get("recovered_q", 0) == 0
        # Amnesia is honest too: the lost queries ride the degraded
        # channel until they re-bootstrap.
        assert m.extra["healthy_exactness"] == 1.0

    def test_replay_rate_limit_costs_recovery_ticks(self):
        ring = RingSink()
        tel = Telemetry(tracer=Tracer(ring))
        fleet, queries = build_workload(SPEC)
        cfg = RunConfig(
            "DKNN-P",
            shard=ShardConfig(
                shards=2, faults=_durable_plan(wal_replay_per_tick=1)
            ),
            params=dict(FT_PARAMS),
        )
        sim = build_system(cfg, fleet, queries, telemetry=tel)
        sim.run(SPEC.ticks)
        recovers = [
            e for e in protocol_events(ring.events())
            if e.kind == "shard.recover"
        ]
        assert recovers and all(
            e.fields["mode"] == "wal" for e in recovers
        )
        # At one record per tick, some journal tail must have taken
        # extra ticks to replay.
        assert any(e.fields["replay_ticks"] > 0 for e in recovers)
        # Replay completion compacts immediately: the journal never
        # stretches past one interval of live ticks.
        assert sim.server.shard_stats.amnesia_queries == 0

    def test_recovery_is_deterministic(self):
        a = _measure(_durable_plan())
        b = _measure(_durable_plan())
        assert a.extra == b.extra
        assert a.exactness == b.exactness


class TestDurabilityKnobsBitIdentity:
    """checkpoint_interval / wal_replay_per_tick alone keep the plan
    disabled: no store, no journaling, bit-identical runs."""

    def _run(self, shard_faults=None):
        ring = RingSink()
        tel = Telemetry(tracer=Tracer(ring))
        fleet, queries = build_workload(SPEC)
        cfg = RunConfig(
            "DKNN-P",
            record_history=True,
            shard=ShardConfig(shards=2, faults=shard_faults),
        )
        sim = build_system(cfg, fleet, queries, telemetry=tel)
        sim.run(SPEC.ticks)
        hist = {q.qid: sim.server.answer_history[q.qid] for q in queries}
        return hist, sim, ring.events()

    def test_knob_only_plan_is_inert(self):
        base_h, base_sim, base_ev = self._run()
        got_h, got_sim, got_ev = self._run(
            ShardFaultPlan(checkpoint_interval=5, wal_replay_per_tick=10)
        )
        assert got_sim.server._durability is None
        assert got_h == base_h
        a, b = base_sim.channel.stats, got_sim.channel.stats
        assert a.per_kind_table() == b.per_kind_table()
        assert a.total_bytes == b.total_bytes
        key = lambda evs: [
            (e.tick, e.kind, e.fields) for e in protocol_events(evs)
        ]
        assert key(got_ev) == key(base_ev)
