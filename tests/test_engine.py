"""The event-scheduled engine: config surface and the equivalence pin.

DESIGN §15's contract is that ``EngineConfig(mode="event")`` changes
*when work happens*, never *what the protocol computes*: at every tick
boundary the published answers, the message counters and the mobility
RNG stream are identical to the synchronous tick loop. The tests here
run both modes tick by tick over the same workload and compare answers
after every single tick — across algorithms, under a FaultPlan, under
the sharded tier, and with one-tick latency.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.algorithms import build_system
from repro.experiments.config import RunConfig
from repro.net.engine import (
    ENGINE_MODES,
    EngineConfig,
    EventDriver,
    ReplayConfig,
    engine_attach,
)
from repro.net.faults import FaultPlan
from repro.server.config import ShardConfig
from repro.workloads import WorkloadSpec, build_workload

#: Mostly-silent workload: small enough for test time, still skippable.
SPEC = WorkloadSpec(
    n_objects=250,
    n_queries=4,
    k=4,
    universe_size=2000.0,
    mobility="mostly_stationary",
    mobility_options={"moving_fraction": 0.08, "period": 20, "active_ticks": 5},
    query_speed=0,
    ticks=40,
    warmup_ticks=3,
    seed=11,
)
TICKS = 40


def _run(cfg: RunConfig, spec: WorkloadSpec = SPEC, ticks: int = TICKS):
    """Run one config tick by tick; return per-tick answers + stats."""
    fleet, queries = build_workload(spec, fast=cfg.fast)
    sim = build_system(cfg, fleet, queries)
    per_tick = []

    def observe(s) -> None:
        per_tick.append(
            {q.qid: frozenset(s.server.answers[q.qid]) for q in queries}
        )

    sim.run(ticks, on_tick=observe)
    driver = getattr(sim, "_driver", None)
    # CommStats is counters all the way down and has no __eq__; its
    # __dict__ (Counters + ints) compares by value.
    return {
        "answers": per_tick,
        "msgs": dict(sim.channel.stats.snapshot().__dict__),
        "driver": driver,
    }


def _assert_equivalent(tick_run, event_run) -> None:
    assert len(tick_run["answers"]) == len(event_run["answers"])
    for t, (a, b) in enumerate(
        zip(tick_run["answers"], event_run["answers"])
    ):
        assert a == b, f"answers diverged at tick {t + 1}"
    assert tick_run["msgs"] == event_run["msgs"]


class TestEngineConfigValidation:
    def test_modes_tuple(self):
        assert ENGINE_MODES == ("tick", "event")

    def test_default_mode_is_event(self):
        assert EngineConfig().mode == "event"

    def test_unknown_mode_raises(self):
        with pytest.raises(ConfigError, match="unknown engine mode"):
            EngineConfig(mode="turbo")

    def test_replay_must_be_replay_config(self):
        with pytest.raises(ConfigError, match="ReplayConfig"):
            EngineConfig(replay={"snapshot_every": 2})

    def test_frozen(self):
        cfg = EngineConfig()
        with pytest.raises(Exception):
            cfg.mode = "tick"

    def test_describe_round_trips_fields(self):
        cfg = EngineConfig(mode="tick", replay=ReplayConfig(snapshot_every=3))
        doc = cfg.describe()
        assert doc["mode"] == "tick"
        assert doc["replay"]["snapshot_every"] == 3
        assert EngineConfig().describe()["replay"] is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"snapshot_every": 0},
            {"snapshot_every": True},
            {"frames_per_tick": 0},
            {"max_objects": 0},
            {"tick_seconds": -1.0},
            {"tick_seconds": "fast"},
        ],
    )
    def test_replay_config_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            ReplayConfig(**kwargs)

    def test_run_config_rejects_non_engine(self):
        with pytest.raises(ConfigError, match="EngineConfig"):
            RunConfig("DKNN-P", engine="event")


class TestEquivalence:
    """Event mode == tick mode, answer for answer, tick for tick."""

    @pytest.mark.parametrize(
        "algorithm", ["DKNN-P", "DKNN-B", "DKNN-G", "PER", "SEA", "CPM"]
    )
    def test_per_tick_answers_match(self, algorithm):
        tick_run = _run(RunConfig(algorithm))
        event_run = _run(
            RunConfig(algorithm, engine=EngineConfig(mode="event"))
        )
        _assert_equivalent(tick_run, event_run)

    def test_tick_mode_is_the_null_engine(self):
        bare = _run(RunConfig("DKNN-P"))
        tick = _run(RunConfig("DKNN-P", engine=EngineConfig(mode="tick")))
        _assert_equivalent(bare, tick)
        assert tick["driver"].skipped_ticks == 0

    def test_fast_path_event_mode(self):
        tick_run = _run(RunConfig("DKNN-P", fast=True))
        event_run = _run(
            RunConfig("DKNN-P", fast=True, engine=EngineConfig(mode="event"))
        )
        _assert_equivalent(tick_run, event_run)
        assert event_run["driver"].skipped_ticks > 0

    def test_under_fault_plan(self):
        plan = FaultPlan(
            seed=5, drop_uplink=0.05, drop_downlink=0.05, delay_prob=0.05
        )
        tick_run = _run(RunConfig("DKNN-P", faults=plan))
        event_run = _run(
            RunConfig("DKNN-P", faults=plan, engine=EngineConfig(mode="event"))
        )
        _assert_equivalent(tick_run, event_run)

    def test_under_sharded_tier(self):
        shard = ShardConfig(shards=2)
        tick_run = _run(RunConfig("DKNN-P", shard=shard))
        event_run = _run(
            RunConfig("DKNN-P", shard=shard, engine=EngineConfig(mode="event"))
        )
        _assert_equivalent(tick_run, event_run)
        assert event_run["driver"].skipped_ticks > 0

    def test_with_one_tick_latency(self):
        tick_run = _run(RunConfig("DKNN-P", latency="one_tick"))
        event_run = _run(
            RunConfig("DKNN-P", latency="one_tick", engine=EngineConfig(mode="event"))
        )
        _assert_equivalent(tick_run, event_run)


class TestSkipping:
    def test_event_mode_actually_skips(self):
        run = _run(RunConfig("DKNN-P", engine=EngineConfig(mode="event")))
        d = run["driver"]
        assert d.skipped_ticks > 0
        assert d.skipped_ticks + d.full_ticks == TICKS
        assert d.fired > 0 and d.scheduled >= d.fired

    def test_record_history_forces_full_ticks(self):
        run = _run(
            RunConfig(
                "DKNN-P",
                record_history=True,
                engine=EngineConfig(mode="event"),
            )
        )
        assert run["driver"].skipped_ticks == 0

    def test_stats_document(self):
        run = _run(RunConfig("DKNN-P", engine=EngineConfig(mode="event")))
        doc = run["driver"].stats()
        for key in (
            "mode",
            "skipping",
            "scheduled",
            "fired",
            "cancelled",
            "skipped_ticks",
            "full_ticks",
            "pending",
        ):
            assert key in doc, f"stats() missing {key}"
        assert doc["mode"] == "event"


class TestAttach:
    def _sim(self):
        fleet, queries = build_workload(SPEC)
        return build_system(RunConfig("DKNN-P"), fleet, queries)

    def test_attach_returns_sim_and_installs_driver(self):
        sim = self._sim()
        out = engine_attach(sim, EngineConfig(mode="event"))
        assert out is sim
        assert isinstance(sim._driver, EventDriver)

    def test_double_attach_raises(self):
        sim = self._sim()
        engine_attach(sim, EngineConfig(mode="event"))
        with pytest.raises(ConfigError, match="already has an engine"):
            engine_attach(sim, EngineConfig(mode="event"))

    def test_attach_after_tick_zero_raises(self):
        sim = self._sim()
        sim.run(1)
        with pytest.raises(ConfigError, match="before the first tick"):
            engine_attach(sim, EngineConfig(mode="event"))

    def test_attach_rejects_non_config(self):
        with pytest.raises(ConfigError, match="EngineConfig"):
            engine_attach(self._sim(), "event")
