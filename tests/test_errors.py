"""The exception hierarchy: one catchable root, distinct families."""

import pytest

from repro.errors import (
    ExperimentError,
    GeometryError,
    IndexError_,
    MobilityError,
    NetworkError,
    ProtocolError,
    ReproError,
    WorkloadError,
)

FAMILIES = [
    GeometryError,
    MobilityError,
    NetworkError,
    IndexError_,
    ProtocolError,
    WorkloadError,
    ExperimentError,
]


@pytest.mark.parametrize("family", FAMILIES)
def test_all_derive_from_repro_error(family):
    assert issubclass(family, ReproError)
    with pytest.raises(ReproError):
        raise family("boom")


def test_families_are_distinct():
    assert len(set(FAMILIES)) == len(FAMILIES)


def test_library_raises_only_repro_errors_on_bad_input():
    from repro.geometry import Rect
    from repro.index import UniformGrid

    with pytest.raises(ReproError):
        Rect(1, 0, 0, 1)
    with pytest.raises(ReproError):
        UniformGrid(Rect(0, 0, 1, 1), 0)


def test_index_error_does_not_shadow_builtin():
    # IndexError_ deliberately avoids clobbering the builtin IndexError.
    assert IndexError_ is not IndexError
    assert not issubclass(IndexError_, IndexError)
