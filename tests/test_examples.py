"""The examples are part of the public deliverable: they must run.

Each example is executed in-process (runpy) with stdout captured; we
assert it completes and prints its headline lines.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart(capsys):
    out = _run_example("quickstart.py", capsys)
    assert "answer valid    : True" in out
    assert "total messages" in out


@pytest.mark.slow
def test_taxi_dispatch(capsys):
    out = _run_example("taxi_dispatch.py", capsys)
    assert "communication saved" in out
    assert "dispatch-list changes" in out


@pytest.mark.slow
def test_road_network_patrol(capsys):
    out = _run_example("road_network_patrol.py", capsys)
    assert "audited answers: 40/40 valid" in out


@pytest.mark.slow
def test_protocol_comparison(capsys):
    out = _run_example("protocol_comparison.py", capsys)
    for name in ("DKNN-B", "DKNN-G", "DKNN-P", "PER", "SEA", "CPM"):
        assert name in out


@pytest.mark.slow
def test_geofence_and_capacity(capsys):
    out = _run_example("geofence_and_capacity.py", capsys)
    assert "audits with any mismatch      : 0" in out
    assert "crossover" in out
