"""Tests of the experiment harness: tables, runner, registry."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ALGORITHMS,
    EXPERIMENTS,
    ResultTable,
    run_experiment,
    run_once,
)
from repro.experiments.algorithms import build_system
from repro.experiments.config import RunConfig
from repro.workloads import WorkloadSpec, build_workload

SMALL = WorkloadSpec(
    n_objects=120, n_queries=2, k=4, ticks=25, warmup_ticks=5, seed=3
)


class TestResultTable:
    def test_requires_columns(self):
        with pytest.raises(ExperimentError):
            ResultTable("t", [])

    def test_add_row_rejects_unknown_columns(self):
        t = ResultTable("t", ["a"])
        with pytest.raises(ExperimentError):
            t.add_row({"b": 1})

    def test_missing_columns_render_blank(self):
        t = ResultTable("t", ["a", "b"])
        t.add_row({"a": 1})
        assert "1" in t.render()

    def test_column_extraction(self):
        t = ResultTable("t", ["a"])
        t.add_row({"a": 1})
        t.add_row({"a": 2})
        assert t.column("a") == [1, 2]
        with pytest.raises(ExperimentError):
            t.column("zz")

    def test_render_contains_title_and_values(self):
        t = ResultTable("My Table", ["x", "y"])
        t.add_row({"x": 1500.0, "y": 0.123456})
        out = t.render()
        assert "My Table" in out
        assert "1,500" in out
        assert "0.123" in out

    def test_csv_roundtrip(self, tmp_path):
        t = ResultTable("t", ["a", "b"])
        t.add_row({"a": 1, "b": "x"})
        path = tmp_path / "out.csv"
        t.to_csv(str(path))
        content = path.read_text()
        assert content.splitlines()[0] == "a,b"
        assert content.splitlines()[1] == "1,x"


class TestRunner:
    def test_measurement_fields_populated(self):
        m = run_once(RunConfig("DKNN-B"), SMALL, accuracy_every=5)
        assert m.algorithm == "DKNN-B"
        assert m.ticks_measured == 20
        assert m.msgs_per_tick > 0
        assert m.exactness == 1.0
        assert m.mean_overlap == 1.0
        assert m.repairs_per_tick is not None
        assert m.per_kind_msgs
        row = m.as_row()
        assert row["algorithm"] == "DKNN-B"

    def test_accuracy_can_be_disabled(self):
        m = run_once(RunConfig("PER"), SMALL, accuracy_every=0)
        assert m.exactness == 1.0  # reported as unchecked default

    def test_negative_accuracy_interval_raises(self):
        with pytest.raises(ExperimentError):
            run_once(RunConfig("PER"), SMALL, accuracy_every=-1)

    def test_alg_params_forwarded(self):
        m1 = run_once(RunConfig("DKNN-P", params={"theta": 10.0}),
                      SMALL, accuracy_every=0)
        m2 = run_once(RunConfig("DKNN-P", params={"theta": 2000.0}),
                      SMALL, accuracy_every=0)
        # Tiny theta floods dead-reckoning updates.
        assert m1.per_kind_msgs.get("location_update", 0) > m2.per_kind_msgs.get(
            "location_update", 0
        )

    def test_centralized_msgs_match_population(self):
        m = run_once(RunConfig("PER"), SMALL, accuracy_every=0)
        assert m.uplink_per_tick == SMALL.population


class TestAlgorithmsRegistry:
    def test_all_five_registered(self):
        assert set(ALGORITHMS) == {
            "DKNN-P", "DKNN-B", "DKNN-G", "PER", "SEA", "CPM"
        }

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ExperimentError):
            RunConfig("FancyNewThing")

    def test_unknown_params_rejected(self):
        with pytest.raises(ExperimentError):
            RunConfig("PER", params={"warp_factor": 9})

    def test_loose_kwargs_are_a_type_error(self):
        # The legacy **kwargs channel is gone entirely: stray keywords
        # now fail at the signature, not via a runtime check.
        fleet, queries = build_workload(SMALL)
        with pytest.raises(TypeError):
            build_system(RunConfig("PER"), fleet, queries, period=2)

    def test_string_algorithm_form_removed(self):
        fleet, queries = build_workload(SMALL)
        with pytest.raises(ExperimentError, match="RunConfig"):
            build_system("PER", fleet, queries)


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
            "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18",
            "E19",
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive_lookup(self):
        table = run_experiment("e7", quick=True)
        assert table.rows

    @pytest.mark.slow
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_quick_mode_runs(self, name):
        table = run_experiment(name, quick=True)
        assert table.rows
        assert table.render()


class TestExpectedShapes:
    """Quick-mode sanity checks of the headline claims."""

    def test_e1_distributed_beats_centralized(self):
        table = run_experiment("E1", quick=True)
        rows = table.rows
        per = {r["N"]: r for r in rows if r["algorithm"] == "PER"}
        dkb = {r["N"]: r for r in rows if r["algorithm"] == "DKNN-B"}
        for n in per:
            assert dkb[n]["msgs/tick"] < per[n]["msgs/tick"]

    def test_e1_centralized_traffic_tracks_population(self):
        table = run_experiment("E1", quick=True)
        per = {
            r["N"]: r["msgs/tick"]
            for r in table.rows
            if r["algorithm"] == "PER"
        }
        ns = sorted(per)
        assert per[ns[-1]] > per[ns[0]] * 1.5

    def test_cli_entrypoint(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        assert main(["E7", "--quick", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "E7" in out
        assert (tmp_path / "e7.csv").exists()
