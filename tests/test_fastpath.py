"""Bit-identity of the vectorized fast path against the scalar spec.

The ``fast=True`` builders must be *indistinguishable* from the scalar
reference: same per-tick answers, same messages (count, kind, bytes,
delivery accounting), same cost-meter units, same fleet trajectories,
same RNG stream — for every protocol, and also under an active fault
plan. These tests pin that contract end to end; the unit-level
counterparts for the index/oracle live in ``test_index_vectorized.py``.
"""

from __future__ import annotations

import pytest

from repro.experiments.algorithms import ALGORITHMS, build_system
from repro.experiments.config import RunConfig
from repro.geometry import Rect
from repro.mobility import (
    FastFleet,
    FastReplayFleet,
    Fleet,
    GaussianClusterModel,
    LinearMover,
    RandomDirectionModel,
    RandomWaypointModel,
    ReplayFleet,
    StationaryMover,
    record_trace,
)
from repro.net.faults import FaultPlan
from repro.workloads.generator import build_workload
from repro.workloads.spec import WorkloadSpec

TICKS = 25


def _run(algorithm, fast, faults=None, n=250, ticks=TICKS):
    spec = WorkloadSpec(
        ticks=ticks, warmup_ticks=0, seed=42, n_objects=n, n_queries=6, k=5
    )
    fleet, queries = build_workload(spec, fast=fast)
    cfg = RunConfig(
        algorithm, record_history=True, fast=fast, faults=faults
    )
    sim = build_system(cfg, fleet, queries)
    answers = []

    def snap(s):
        hist = getattr(s.server, "history", None)
        if hist is not None:
            answers.append(
                {qid: tuple(a[-1]) if a else None for qid, a in hist.items()}
            )

    sim.run(ticks, on_tick=snap)
    stats = sim.channel.stats
    meter = getattr(sim.server, "meter", None)
    return {
        "answers": answers,
        "messages": dict(stats.sent_by_kind),
        "bytes": dict(stats.bytes_by_kind),
        "delivered": (stats.delivered, stats.broadcast_receptions),
        "meter": dict(meter.units) if meter is not None else None,
        "positions": [tuple(p) for p in fleet.positions],
    }


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fast_path_bit_identical(algorithm):
    scalar = _run(algorithm, fast=False)
    fast = _run(algorithm, fast=True)
    assert fast["positions"] == scalar["positions"]
    assert fast["messages"] == scalar["messages"]
    assert fast["bytes"] == scalar["bytes"]
    assert fast["delivered"] == scalar["delivered"]
    assert fast["meter"] == scalar["meter"]
    assert fast["answers"] == scalar["answers"]


@pytest.mark.parametrize(
    "algorithm,plan_kwargs",
    [
        (
            "DKNN-P",
            dict(
                seed=7,
                drop_uplink=0.08,
                drop_downlink=0.08,
                dup_prob=0.03,
                delay_prob=0.05,
                delay_ticks=2,
                blackouts=((13, 8, 12), (77, 15, 18)),
                crashes=((201, 20),),
            ),
        ),
        (
            "DKNN-B",
            dict(
                seed=11,
                drop_uplink=0.05,
                drop_downlink=0.05,
                dup_prob=0.02,
                delay_prob=0.04,
                delay_ticks=1,
            ),
        ),
        (
            "DKNN-G",
            dict(
                seed=11,
                drop_uplink=0.05,
                drop_downlink=0.05,
                dup_prob=0.02,
                delay_prob=0.04,
                delay_ticks=1,
                blackouts=((31, 5, 9),),
            ),
        ),
    ],
)
def test_fast_path_bit_identical_under_faults(algorithm, plan_kwargs):
    """The regression the fast path must survive: an active FaultPlan.

    Faulty channels consume the shared RNG stream per message and down
    nodes must be skipped in exactly the scalar order, so any fast-path
    deviation (extra send, reordered dispatch) shows up as a diverged
    run, not a subtle statistic.
    """
    scalar = _run(algorithm, fast=False, faults=FaultPlan(**plan_kwargs))
    fast = _run(algorithm, fast=True, faults=FaultPlan(**plan_kwargs))
    assert fast["positions"] == scalar["positions"]
    assert fast["messages"] == scalar["messages"]
    assert fast["bytes"] == scalar["bytes"]
    assert fast["delivered"] == scalar["delivered"]
    assert fast["meter"] == scalar["meter"]
    assert fast["answers"] == scalar["answers"]


# -- fleet backends -----------------------------------------------------------


UNIVERSE = Rect(0.0, 0.0, 5_000.0, 5_000.0)


def _trajectories(fleet, ticks=30):
    frames = [[tuple(p) for p in fleet.positions]]
    for _ in range(ticks):
        fleet.advance()
        frames.append([tuple(p) for p in fleet.positions])
    return frames


@pytest.mark.parametrize(
    "model_fn",
    [
        lambda: RandomWaypointModel(UNIVERSE, speed_min=20.0, speed_max=45.0),
        lambda: RandomDirectionModel(UNIVERSE, speed_min=15.0, speed_max=40.0),
        lambda: GaussianClusterModel(
            UNIVERSE, n_hotspots=5, sigma=300.0, speed_min=10.0, speed_max=35.0
        ),
    ],
    ids=["waypoint", "direction", "gaussian"],
)
def test_fast_fleet_matches_scalar_fleet(model_fn):
    scalar = Fleet.from_model(model_fn(), 120, seed=31)
    fast = FastFleet.from_model(model_fn(), 120, seed=31)
    assert _trajectories(fast) == _trajectories(scalar)
    # The shared RNG stream must be in the same state afterwards, or a
    # later consumer (a faulty channel) would diverge.
    assert fast._rng.random() == scalar._rng.random()


def test_fast_fleet_matches_scalar_fleet_mixed_movers():
    movers = [
        StationaryMover(UNIVERSE, 100.0 * i + 50.0, 200.0) for i in range(10)
    ] + [
        LinearMover(UNIVERSE, 50.0, 100.0 * i + 50.0, 12.5, -7.25)
        for i in range(10)
    ]
    model = RandomWaypointModel(UNIVERSE, speed_min=20.0, speed_max=45.0)
    scalar = Fleet.from_model(model, 40, seed=8, extra_movers=movers)
    movers2 = [
        StationaryMover(UNIVERSE, 100.0 * i + 50.0, 200.0) for i in range(10)
    ] + [
        LinearMover(UNIVERSE, 50.0, 100.0 * i + 50.0, 12.5, -7.25)
        for i in range(10)
    ]
    model2 = RandomWaypointModel(UNIVERSE, speed_min=20.0, speed_max=45.0)
    fast = FastFleet.from_model(model2, 40, seed=8, extra_movers=movers2)
    assert _trajectories(fast) == _trajectories(scalar)


def test_fast_replay_fleet_matches_scalar_replay():
    model = RandomWaypointModel(UNIVERSE, speed_min=20.0, speed_max=45.0)
    trace = record_trace(Fleet.from_model(model, 50, seed=3), 20)
    scalar = ReplayFleet(trace)
    fast = FastReplayFleet(trace)
    assert _trajectories(fast, ticks=20) == _trajectories(scalar, ticks=20)
