"""Behavioral tests for the geocast protocol (DKNN-G)."""

import math

import pytest

from repro.core.geocast_variant import GeocastParams, build_geocast_system
from repro.errors import ProtocolError
from repro.net.message import MessageKind
from repro.workloads import WorkloadSpec, build_workload
from tests.helpers import ExactnessChecker


def _system(n=150, q=2, k=5, seed=29, query_speed=50.0, **params):
    spec = WorkloadSpec(
        n_objects=n, n_queries=q, k=k, seed=seed, ticks=10,
        warmup_ticks=1, query_speed=query_speed,
    )
    fleet, queries = build_workload(spec)
    sim = build_geocast_system(
        fleet, queries, GeocastParams(**params) if params else None
    )
    return sim, fleet, queries


class TestParams:
    def test_invalid_lease_raises(self):
        with pytest.raises(ProtocolError):
            GeocastParams(lease_ticks=0)

    def test_broadcast_fields_validated(self):
        with pytest.raises(ProtocolError):
            GeocastParams(collect_slack=0.5)

    def test_as_broadcast_conversion(self):
        g = GeocastParams(s_cap=33.0, lease_ticks=7)
        assert g.as_broadcast().s_cap == 33.0


class TestTrafficShape:
    def test_uses_geocasts_not_broadcasts(self):
        sim, fleet, _ = _system()
        sim.run(10)
        stats = sim.channel.stats
        assert stats.geocast_messages > 0
        assert stats.broadcast_messages == 0  # only trivial installs broadcast

    def test_wakeups_far_below_broadcast_variant(self):
        from repro.core.broadcast_variant import build_broadcast_system

        spec = WorkloadSpec(
            n_objects=300, n_queries=2, k=5, seed=31, ticks=40, warmup_ticks=5
        )
        fleet_b, queries_b = build_workload(spec)
        sim_b = build_broadcast_system(fleet_b, queries_b)
        sim_b.run(40)
        fleet_g, queries_g = build_workload(spec)
        sim_g = build_geocast_system(fleet_g, queries_g)
        sim_g.run(40)
        assert (
            sim_g.channel.stats.broadcast_receptions
            < sim_b.channel.stats.broadcast_receptions / 3
        )

    def test_exactness_over_run(self):
        sim, fleet, queries = _system()
        checker = ExactnessChecker(fleet, queries)
        sim.run(50, on_tick=checker)
        checker.assert_clean()

    def test_exact_with_static_query_and_lease_renewals(self):
        # Near-static world: repairs are rare, so leases actually
        # expire and the renewal path runs.
        spec = WorkloadSpec(
            n_objects=150, n_queries=2, k=5, seed=33, ticks=10,
            warmup_ticks=1, query_speed=0.0, speed_min=0.5, speed_max=1.0,
        )
        fleet, queries = build_workload(spec)
        sim = build_geocast_system(
            fleet, queries, GeocastParams(lease_ticks=5)
        )
        checker = ExactnessChecker(fleet, queries)
        sim.run(60, on_tick=checker)
        checker.assert_clean()
        assert sim.server.renewals > 0

    @pytest.mark.parametrize("lease", [1, 3, 25])
    def test_exact_across_leases(self, lease):
        sim, fleet, queries = _system(seed=37, lease_ticks=lease)
        checker = ExactnessChecker(fleet, queries)
        sim.run(40, on_tick=checker)
        checker.assert_clean()


class TestEpochs:
    def test_epochs_increase_with_repairs(self):
        sim, fleet, queries = _system()
        sim.run(20)
        for q in queries:
            st = sim.server._states[q.qid]
            assert st.epoch == sim.server.repair_count[q.qid]

    def test_stale_violations_are_dropped_not_fatal(self):
        from repro.core.protocol import ViolationReport
        from repro.net.message import Message, SERVER_ID

        sim, fleet, queries = _system()
        sim.run(5)
        before = sim.server.stale_violations
        sim.server.on_message(
            Message(
                MessageKind.VIOLATION, 0, SERVER_ID,
                ViolationReport(queries[0].qid, 1.0, 1.0, epoch=0),
            )
        )
        assert sim.server.stale_violations == before + 1

    def test_mobile_ignores_older_epoch_install(self):
        from repro.core.protocol import GeocastInstall
        from repro.net.message import Message, SERVER_ID

        sim, fleet, _ = _system()
        sim.run(5)
        node = sim.mobiles[0]
        monitored_qid = next(iter(node.monitors))
        held = node._epochs[monitored_qid]
        stale = GeocastInstall(
            monitored_qid, 0, 0, 10.0, 1.0, (99,), cover=100.0,
            epoch=max(held - 1, 0),
        )
        current = node.monitors[monitored_qid]
        node.on_message(
            Message(MessageKind.BROADCAST_INSTALL, SERVER_ID, node.oid, stale)
        )
        if held > 0:
            assert node.monitors[monitored_qid] is current


class TestTrivialPopulation:
    def test_population_below_k_uses_broadcast_fallback(self):
        sim, fleet, queries = _system(n=3, q=1, k=8)
        checker = ExactnessChecker(fleet, queries)
        sim.run(20, on_tick=checker)
        checker.assert_clean()
        assert math.isinf(sim.server._states[queries[0].qid].threshold)
        assert sim.channel.stats.broadcast_messages >= 1

    def test_negative_vmax_raises(self, universe):
        from repro.core.geocast_variant import DknnGeocastServer

        with pytest.raises(ProtocolError):
            DknnGeocastServer(universe, v_max=-1.0)


class TestOneTickLatency:
    def test_geocast_runs_with_latency_and_records_coverage(self):
        from repro.net.simulator import ONE_TICK_LATENCY

        spec = WorkloadSpec(
            n_objects=150, n_queries=2, k=5, seed=29, ticks=12,
            warmup_ticks=1, query_speed=50.0,
        )
        fleet, queries = build_workload(spec)
        sim = build_geocast_system(
            fleet, queries, None, latency=ONE_TICK_LATENCY
        )
        sim.run(12)
        stats = sim.channel.stats
        # the collect geocasts went out and their coverage-based
        # receptions were recorded by the simulator's delivery loop
        assert stats.geocast_messages > 0
        assert stats.broadcast_receptions > 0
        for q in queries:
            assert len(sim.server.answers[q.qid]) == q.k
