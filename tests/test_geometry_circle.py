"""Unit tests for repro.geometry.circle."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import Annulus, Circle, Rect


class TestCircle:
    def test_negative_radius_raises(self):
        with pytest.raises(GeometryError):
            Circle(0, 0, -1)

    def test_zero_radius_contains_center_only(self):
        c = Circle(2, 3, 0)
        assert c.contains_point(2, 3)
        assert not c.contains_point(2, 3.001)

    def test_contains_point_boundary(self):
        assert Circle(0, 0, 5).contains_point(3, 4)

    def test_contains_point_outside(self):
        assert not Circle(0, 0, 5).contains_point(3.1, 4)

    def test_contains_circle(self):
        assert Circle(0, 0, 10).contains_circle(Circle(3, 0, 7))
        assert not Circle(0, 0, 10).contains_circle(Circle(3, 0, 8))

    def test_intersects_circle_touching(self):
        assert Circle(0, 0, 3).intersects_circle(Circle(7, 0, 4))

    def test_intersects_circle_disjoint(self):
        assert not Circle(0, 0, 3).intersects_circle(Circle(8, 0, 4))

    def test_intersects_rect(self):
        assert Circle(0, 0, 5).intersects_rect(Rect(4, 0, 10, 10))
        assert not Circle(0, 0, 5).intersects_rect(Rect(4, 4, 10, 10))

    def test_contains_rect(self):
        assert Circle(5, 5, 8).contains_rect(Rect(3, 3, 7, 7))
        assert not Circle(5, 5, 2).contains_rect(Rect(3, 3, 7, 7))

    def test_bounding_rect(self):
        assert Circle(5, 5, 2).bounding_rect() == Rect(3, 3, 7, 7)

    def test_expanded(self):
        assert Circle(0, 0, 5).expanded(3).r == 8

    def test_expanded_floors_at_zero(self):
        assert Circle(0, 0, 5).expanded(-9).r == 0

    def test_immutable_and_hashable(self):
        c = Circle(1, 2, 3)
        with pytest.raises(AttributeError):
            c.r = 4
        assert len({c, Circle(1, 2, 3)}) == 1

    def test_distance_to_center(self):
        assert Circle(0, 0, 1).distance_to_center(3, 4) == 5.0


class TestAnnulus:
    def test_invalid_radii_raise(self):
        with pytest.raises(GeometryError):
            Annulus(0, 0, -1, 5)
        with pytest.raises(GeometryError):
            Annulus(0, 0, 5, 3)

    def test_contains_point_in_band(self):
        a = Annulus(0, 0, 2, 5)
        assert a.contains_point(3, 0)
        assert a.contains_point(0, 2)  # inner boundary
        assert a.contains_point(5, 0)  # outer boundary

    def test_excludes_hole_and_outside(self):
        a = Annulus(0, 0, 2, 5)
        assert not a.contains_point(1, 0)
        assert not a.contains_point(5.1, 0)

    def test_infinite_outer(self):
        a = Annulus(0, 0, 2, math.inf)
        assert a.contains_point(1e12, 0)
        assert not a.contains_point(1, 0)

    def test_degenerate_disk(self):
        a = Annulus(0, 0, 0, 5)
        assert a.contains_point(0, 0)

    def test_intersects_rect(self):
        a = Annulus(0, 0, 2, 5)
        assert a.intersects_rect(Rect(3, 0, 4, 1))
        assert not a.intersects_rect(Rect(-1, -1, 1, 1))  # inside the hole
        assert not a.intersects_rect(Rect(6, 6, 9, 9))  # beyond the outer

    def test_equality_and_hash(self):
        assert Annulus(0, 0, 1, 2) == Annulus(0, 0, 1, 2)
        assert len({Annulus(0, 0, 1, 2), Annulus(0, 0, 1, 2)}) == 1
