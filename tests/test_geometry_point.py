"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, clamp, dist, dist2, midpoint, translate_toward


class TestDistances:
    def test_dist_simple(self):
        assert dist(0, 0, 3, 4) == 5.0

    def test_dist_zero(self):
        assert dist(7.5, -2.0, 7.5, -2.0) == 0.0

    def test_dist2_matches_dist(self):
        assert dist2(1, 2, 4, 6) == pytest.approx(dist(1, 2, 4, 6) ** 2)

    def test_dist_symmetry(self):
        assert dist(1, 2, 5, 9) == dist(5, 9, 1, 2)

    def test_dist_negative_coordinates(self):
        assert dist(-3, -4, 0, 0) == 5.0


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_degenerate_interval(self):
        assert clamp(5, 3, 3) == 3

    def test_empty_interval_raises(self):
        with pytest.raises(GeometryError):
            clamp(5, 10, 0)


class TestPoint:
    def test_unpacking(self):
        x, y = Point(3, 4)
        assert (x, y) == (3.0, 4.0)

    def test_equality_with_point(self):
        assert Point(1, 2) == Point(1, 2)
        assert Point(1, 2) != Point(2, 1)

    def test_equality_with_tuple(self):
        assert Point(1, 2) == (1.0, 2.0)

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(3, 4)}) == 2

    def test_immutable(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 5

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance2_to(self):
        assert Point(0, 0).distance2_to(Point(3, 4)) == 25.0

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_repr_roundtrippable_values(self):
        assert "1" in repr(Point(1, 2)) and "2" in repr(Point(1, 2))


class TestMidpoint:
    def test_midpoint(self):
        assert midpoint(0, 0, 4, 6) == (2.0, 3.0)

    def test_midpoint_of_identical_points(self):
        assert midpoint(3, 3, 3, 3) == (3.0, 3.0)


class TestTranslateToward:
    def test_lands_on_target_when_close(self):
        assert translate_toward(0, 0, 1, 0, 5) == (1.0, 0.0)

    def test_partial_step(self):
        x, y = translate_toward(0, 0, 10, 0, 4)
        assert (x, y) == (4.0, 0.0)

    def test_step_preserves_direction(self):
        x, y = translate_toward(0, 0, 3, 4, 2.5)
        assert math.hypot(x, y) == pytest.approx(2.5)
        assert y / x == pytest.approx(4 / 3)

    def test_zero_distance_target(self):
        assert translate_toward(2, 2, 2, 2, 1.0) == (2.0, 2.0)

    def test_negative_step_raises(self):
        with pytest.raises(GeometryError):
            translate_toward(0, 0, 1, 1, -0.5)
