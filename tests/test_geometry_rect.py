"""Unit tests for repro.geometry.rect."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import Rect


class TestConstruction:
    def test_inverted_x_raises(self):
        with pytest.raises(GeometryError):
            Rect(5, 0, 1, 10)

    def test_inverted_y_raises(self):
        with pytest.raises(GeometryError):
            Rect(0, 10, 10, 5)

    def test_degenerate_allowed(self):
        r = Rect(3, 3, 3, 3)
        assert r.area == 0.0

    def test_immutable(self):
        r = Rect(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            r.xmin = -1

    def test_equality_and_hash(self):
        assert Rect(0, 0, 1, 1) == Rect(0, 0, 1, 1)
        assert len({Rect(0, 0, 1, 1), Rect(0, 0, 1, 1)}) == 1

    def test_iter_unpacks(self):
        xmin, ymin, xmax, ymax = Rect(1, 2, 3, 4)
        assert (xmin, ymin, xmax, ymax) == (1, 2, 3, 4)


class TestMeasures:
    def test_width_height_area(self):
        r = Rect(1, 2, 4, 8)
        assert (r.width, r.height, r.area) == (3, 6, 18)

    def test_center(self):
        assert Rect(0, 0, 4, 8).center == (2, 4)


class TestPredicates:
    def test_contains_point_inside(self):
        assert Rect(0, 0, 10, 10).contains_point(5, 5)

    def test_contains_point_boundary(self):
        assert Rect(0, 0, 10, 10).contains_point(10, 0)

    def test_contains_point_outside(self):
        assert not Rect(0, 0, 10, 10).contains_point(10.001, 5)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 11, 9))

    def test_intersects_overlap(self):
        assert Rect(0, 0, 5, 5).intersects(Rect(4, 4, 9, 9))

    def test_intersects_touching_edge(self):
        assert Rect(0, 0, 5, 5).intersects(Rect(5, 0, 9, 5))

    def test_intersects_disjoint(self):
        assert not Rect(0, 0, 5, 5).intersects(Rect(6, 6, 9, 9))


class TestDistances:
    def test_min_dist_inside_is_zero(self):
        assert Rect(0, 0, 10, 10).min_dist(3, 7) == 0.0

    def test_min_dist_axis(self):
        assert Rect(0, 0, 10, 10).min_dist(15, 5) == 5.0

    def test_min_dist_corner(self):
        assert Rect(0, 0, 10, 10).min_dist(13, 14) == 5.0

    def test_max_dist_from_center(self):
        r = Rect(0, 0, 10, 10)
        assert r.max_dist(5, 5) == pytest.approx(math.hypot(5, 5))

    def test_max_dist_ge_min_dist(self):
        r = Rect(2, 3, 7, 9)
        for p in [(0, 0), (5, 5), (100, -3)]:
            assert r.max_dist(*p) >= r.min_dist(*p)


class TestConstructive:
    def test_expanded(self):
        assert Rect(0, 0, 10, 10).expanded(2) == Rect(-2, -2, 12, 12)

    def test_expanded_negative_shrinks(self):
        assert Rect(0, 0, 10, 10).expanded(-1) == Rect(1, 1, 9, 9)

    def test_expanded_past_center_raises(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 4, 4).expanded(-3)

    def test_intersection(self):
        assert Rect(0, 0, 5, 5).intersection(Rect(3, 3, 9, 9)) == Rect(3, 3, 5, 5)

    def test_intersection_disjoint_raises(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6))

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(5, 5, 6, 6)) == Rect(0, 0, 6, 6)

    def test_clamp_point_inside(self):
        assert Rect(0, 0, 10, 10).clamp_point(3, 4) == (3, 4)

    def test_clamp_point_outside(self):
        assert Rect(0, 0, 10, 10).clamp_point(-5, 20) == (0, 10)
