"""Unit tests for safe regions (repro.geometry.region)."""

import pytest

from repro.errors import GeometryError
from repro.geometry import AnswerBand, OutsiderBand, QuerySafeCircle


class TestAnswerBand:
    def test_contains_within_radius(self):
        band = AnswerBand(0, 0, 10)
        assert band.contains(6, 8)  # exactly on the boundary
        assert band.contains(0, 0)

    def test_violated_outside(self):
        band = AnswerBand(0, 0, 10)
        assert band.violated(6.01, 8)

    def test_anchor_distance(self):
        assert AnswerBand(0, 0, 10).anchor_distance(3, 4) == 5.0


class TestOutsiderBand:
    def test_contains_beyond_radius(self):
        band = OutsiderBand(0, 0, 10)
        assert band.contains(6, 8)  # boundary is safe
        assert band.contains(100, 0)

    def test_violated_inside(self):
        band = OutsiderBand(0, 0, 10)
        assert band.violated(5, 5)

    def test_opposite_of_answer_band_in_interior(self):
        a = AnswerBand(0, 0, 10)
        o = OutsiderBand(0, 0, 10)
        for p in [(1, 1), (20, 0), (0, -30)]:
            if a.anchor_distance(*p) != 10:
                assert a.contains(*p) != o.contains(*p)


class TestQuerySafeCircle:
    def test_contains_within(self):
        circle = QuerySafeCircle(5, 5, 3)
        assert circle.contains(7, 5)

    def test_violated_beyond(self):
        circle = QuerySafeCircle(5, 5, 3)
        assert circle.violated(9, 5)


class TestCommon:
    def test_negative_radius_raises(self):
        with pytest.raises(GeometryError):
            AnswerBand(0, 0, -1)

    def test_immutable(self):
        band = AnswerBand(0, 0, 1)
        with pytest.raises(AttributeError):
            band.radius = 2

    def test_equality_is_type_sensitive(self):
        assert AnswerBand(0, 0, 1) == AnswerBand(0, 0, 1)
        assert AnswerBand(0, 0, 1) != OutsiderBand(0, 0, 1)

    def test_hash_distinguishes_types(self):
        regions = {AnswerBand(0, 0, 1), OutsiderBand(0, 0, 1)}
        assert len(regions) == 2

    def test_anchor_property(self):
        assert AnswerBand(3, 4, 1).anchor == (3.0, 4.0)

    def test_repr_contains_radius(self):
        assert "radius=7" in repr(AnswerBand(0, 0, 7))
