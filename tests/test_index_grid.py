"""Unit tests for the uniform grid index."""

import pytest

from repro.errors import IndexError_
from repro.geometry import Rect
from repro.index import UniformGrid
from repro.metrics.cost import CostMeter


@pytest.fixture
def grid(universe):
    return UniformGrid(universe, 10)


class TestConstruction:
    def test_zero_cells_raises(self, universe):
        with pytest.raises(IndexError_):
            UniformGrid(universe, 0)

    def test_degenerate_universe_raises(self):
        with pytest.raises(IndexError_):
            UniformGrid(Rect(0, 0, 0, 10), 4)


class TestCellGeometry:
    def test_cell_of_interior(self, grid):
        assert grid.cell_of(500, 500) == (0, 0)
        assert grid.cell_of(1500, 2500) == (1, 2)

    def test_cell_of_max_boundary_clamps(self, grid):
        assert grid.cell_of(10_000, 10_000) == (9, 9)

    def test_cell_of_outside_raises(self, grid):
        with pytest.raises(IndexError_):
            grid.cell_of(-1, 0)

    def test_cell_rect_tiles_universe(self, grid):
        r = grid.cell_rect((0, 0))
        assert r == Rect(0, 0, 1000, 1000)
        r = grid.cell_rect((9, 9))
        assert r == Rect(9000, 9000, 10_000, 10_000)

    def test_cell_rect_out_of_range_raises(self, grid):
        with pytest.raises(IndexError_):
            grid.cell_rect((10, 0))

    def test_cell_min_dist_zero_inside(self, grid):
        assert grid.cell_min_dist((0, 0), 500, 500) == 0.0

    def test_cell_min_dist_matches_rect(self, grid):
        for cell in [(0, 0), (3, 7), (9, 9)]:
            rect = grid.cell_rect(cell)
            for p in [(0, 0), (5000, 5000), (9999, 1)]:
                assert grid.cell_min_dist(cell, *p) == pytest.approx(
                    rect.min_dist(*p)
                )


class TestMaintenance:
    def test_insert_and_lookup(self, grid):
        grid.insert(1, 100, 200)
        assert 1 in grid
        assert grid.position_of(1) == (100, 200)
        assert len(grid) == 1

    def test_duplicate_insert_raises(self, grid):
        grid.insert(1, 100, 200)
        with pytest.raises(IndexError_):
            grid.insert(1, 300, 300)

    def test_remove(self, grid):
        grid.insert(1, 100, 200)
        grid.remove(1)
        assert 1 not in grid
        with pytest.raises(IndexError_):
            grid.position_of(1)

    def test_remove_absent_raises(self, grid):
        with pytest.raises(IndexError_):
            grid.remove(7)

    def test_update_within_cell(self, grid):
        grid.insert(1, 100, 100)
        grid.update(1, 150, 150)
        assert grid.position_of(1) == (150, 150)
        assert grid.objects_in_cell((0, 0)) == {1}

    def test_update_across_cells(self, grid):
        grid.insert(1, 100, 100)
        grid.update(1, 5500, 100)
        assert grid.objects_in_cell((0, 0)) == set()
        assert grid.objects_in_cell((5, 0)) == {1}

    def test_update_absent_raises(self, grid):
        with pytest.raises(IndexError_):
            grid.update(1, 0, 0)

    def test_upsert_inserts_then_updates(self, grid):
        grid.upsert(1, 100, 100)
        grid.upsert(1, 200, 200)
        assert grid.position_of(1) == (200, 200)
        assert len(grid) == 1

    def test_empty_buckets_are_pruned(self, grid):
        grid.insert(1, 100, 100)
        grid.update(1, 9500, 9500)
        assert (0, 0) not in set(grid.nonempty_cells())

    def test_ids_iteration(self, grid):
        for i in range(5):
            grid.insert(i, i * 1000.0 + 1, 50)
        assert set(grid.ids()) == set(range(5))


class TestCircleCover:
    def test_cells_intersecting_circle_covers_members(self, grid):
        cells = set(grid.cells_intersecting_circle(5000, 5000, 1500))
        assert grid.cell_of(5000, 5000) in cells
        assert grid.cell_of(6400, 5000) in cells
        assert grid.cell_of(8000, 8000) not in cells

    def test_negative_radius_raises(self, grid):
        with pytest.raises(IndexError_):
            list(grid.cells_intersecting_circle(0, 0, -1))

    def test_zero_radius_returns_containing_cell(self, grid):
        cells = list(grid.cells_intersecting_circle(5500, 5500, 0))
        assert grid.cell_of(5500, 5500) in cells


class TestMetering:
    def test_updates_charge_meter(self, universe):
        meter = CostMeter()
        grid = UniformGrid(universe, 10, meter=meter)
        grid.insert(1, 0, 0)
        grid.update(1, 50, 50)
        grid.remove(1)
        assert meter.of(CostMeter.INDEX_UPDATE) == 3
