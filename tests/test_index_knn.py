"""Unit tests for grid kNN / range search against the brute oracle."""

import random

import pytest

from repro.errors import IndexError_
from repro.geometry import Rect
from repro.index import (
    UniformGrid,
    brute_knn,
    brute_knn_ids,
    brute_range,
    knn_search,
    range_search,
)
from repro.metrics.cost import CostMeter


def _populate(universe, n, seed, cells=16):
    rng = random.Random(seed)
    positions = [
        (rng.uniform(universe.xmin, universe.xmax),
         rng.uniform(universe.ymin, universe.ymax))
        for _ in range(n)
    ]
    grid = UniformGrid(universe, cells)
    for oid, (x, y) in enumerate(positions):
        grid.insert(oid, x, y)
    return grid, positions


class TestKnnBasics:
    def test_k_must_be_positive(self, universe):
        grid, _ = _populate(universe, 10, 0)
        with pytest.raises(IndexError_):
            knn_search(grid, 0, 0, 0)

    def test_empty_grid_returns_empty(self, universe):
        grid = UniformGrid(universe, 8)
        assert knn_search(grid, 5000, 5000, 3) == []

    def test_fewer_objects_than_k(self, universe):
        grid, positions = _populate(universe, 4, 1)
        result = knn_search(grid, 5000, 5000, 10)
        assert sorted(oid for _, oid in result) == [0, 1, 2, 3]

    def test_single_object(self, universe):
        grid = UniformGrid(universe, 8)
        grid.insert(7, 1234, 5678)
        assert [oid for _, oid in knn_search(grid, 0, 0, 1)] == [7]

    def test_exclude_removes_candidates(self, universe):
        grid, positions = _populate(universe, 20, 2)
        full = brute_knn_ids(positions, 5000, 5000, 3)
        excl = knn_search(grid, 5000, 5000, 3, exclude=frozenset(full[:1]))
        assert full[0] not in [oid for _, oid in excl]

    def test_query_outside_universe_is_clamped(self, universe):
        grid, positions = _populate(universe, 30, 3)
        result = knn_search(grid, -500, -500, 5)
        expected = brute_knn_ids(positions, -500, -500, 5)
        assert [oid for _, oid in result] == expected

    def test_result_is_sorted_by_distance_then_id(self, universe):
        grid, _ = _populate(universe, 50, 4)
        result = knn_search(grid, 5000, 5000, 10)
        assert result == sorted(result)

    def test_ties_broken_by_id(self, universe):
        grid = UniformGrid(universe, 8)
        grid.insert(5, 1000, 0)
        grid.insert(2, 0, 1000)
        result = knn_search(grid, 0, 0, 1)
        assert [oid for _, oid in result] == [2]


class TestKnnMatchesBruteForce:
    @pytest.mark.parametrize("n,cells", [(30, 4), (200, 16), (500, 48)])
    def test_random_queries(self, universe, n, cells):
        grid, positions = _populate(universe, n, seed=n, cells=cells)
        rng = random.Random(n + 1)
        for _ in range(50):
            qx = rng.uniform(0, 10_000)
            qy = rng.uniform(0, 10_000)
            k = rng.randint(1, 15)
            got = [oid for _, oid in knn_search(grid, qx, qy, k)]
            want = brute_knn_ids(positions, qx, qy, k)
            assert got == want

    def test_clustered_points(self, universe):
        rng = random.Random(5)
        grid = UniformGrid(universe, 20)
        positions = []
        for oid in range(200):
            cx, cy = (2000, 2000) if oid % 2 else (8000, 8000)
            p = (cx + rng.uniform(-100, 100), cy + rng.uniform(-100, 100))
            grid.insert(oid, *p)
            positions.append(p)
        got = [oid for _, oid in knn_search(grid, 2000, 2000, 7)]
        assert got == brute_knn_ids(positions, 2000, 2000, 7)


class TestRangeSearch:
    def test_negative_radius_raises(self, universe):
        grid, _ = _populate(universe, 10, 0)
        with pytest.raises(IndexError_):
            range_search(grid, 0, 0, -1)

    def test_matches_brute_force(self, universe):
        grid, positions = _populate(universe, 300, 9)
        rng = random.Random(10)
        for _ in range(40):
            cx, cy = rng.uniform(0, 10_000), rng.uniform(0, 10_000)
            r = rng.uniform(0, 3000)
            got = [oid for _, oid in range_search(grid, cx, cy, r)]
            want = [oid for _, oid in brute_range(positions, cx, cy, r)]
            assert got == want

    def test_zero_radius(self, universe):
        grid = UniformGrid(universe, 8)
        grid.insert(1, 500, 500)
        assert [oid for _, oid in range_search(grid, 500, 500, 0)] == [1]
        assert range_search(grid, 501, 500, 0) == []


class TestBruteForce:
    def test_brute_knn_requires_positive_k(self):
        with pytest.raises(IndexError_):
            brute_knn([(0.0, 0.0)], 0, 0, 0)

    def test_brute_range_requires_nonnegative_radius(self):
        with pytest.raises(IndexError_):
            brute_range([(0.0, 0.0)], 0, 0, -1)

    def test_brute_knn_exclusion(self):
        positions = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
        assert brute_knn_ids(positions, 0, 0, 2, exclude={0}) == [1, 2]


class TestSearchCostAccounting:
    def test_knn_charges_meter(self, universe):
        meter = CostMeter()
        grid, _ = _populate(universe, 100, 11)
        knn_search(grid, 5000, 5000, 5, meter=meter)
        assert meter.of(CostMeter.DIST_CALC) > 0
        assert meter.of(CostMeter.CELL_VISIT) > 0

    def test_knn_visits_few_cells_for_small_k(self, universe):
        meter = CostMeter()
        grid, _ = _populate(universe, 2000, 12, cells=32)
        knn_search(grid, 5000, 5000, 3, meter=meter)
        assert meter.of(CostMeter.CELL_VISIT) < 32 * 32 / 4
