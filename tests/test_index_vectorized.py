"""Property tests: the numpy engines equal the scalar ones to the ulp.

Both the brute-force oracle (``repro.index.bruteforce``) and the grid
(``bulk_load``/``rebuild``) auto-dispatch between a scalar loop and a
vectorized engine. The two must agree *exactly* — same distances bit
for bit, same ``(distance, oid)`` tie-breaks, same ``exclude``
semantics — because answers from either engine are compared against
client band decisions made with the shared sqrt recipe. Duplicate
coordinates are generated on purpose: ties are where a wrong sort key
or an unstable partition shows up.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.index import UniformGrid
from repro.index.bruteforce import (
    brute_knn_np,
    brute_knn_scalar,
    brute_range_np,
    brute_range_scalar,
)
from repro.metrics.accuracy import is_valid_knn

UNIVERSE = Rect(0, 0, 1000, 1000)

# A few fixed coordinates mixed with free floats forces duplicate
# points (distance ties) into most examples.
coord = st.one_of(
    st.sampled_from([0.0, 250.0, 500.0, 500.0000000001, 1000.0]),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
)
point = st.tuples(coord, coord)
points = st.lists(point, min_size=1, max_size=90)
query = st.tuples(
    st.floats(min_value=-200, max_value=1200, allow_nan=False),
    st.floats(min_value=-200, max_value=1200, allow_nan=False),
)
k_value = st.integers(min_value=1, max_value=15)
excludes = st.sets(st.integers(0, 89))


@given(points, query, k_value, excludes)
@settings(max_examples=150, deadline=None)
def test_brute_knn_engines_agree(ps, q, k, exclude):
    scalar = brute_knn_scalar(ps, q[0], q[1], k, exclude)
    vector = brute_knn_np(ps, q[0], q[1], k, exclude)
    assert vector == scalar  # bitwise: distances are floats


@given(
    points,
    query,
    st.floats(min_value=0, max_value=1500, allow_nan=False),
    excludes,
)
@settings(max_examples=150, deadline=None)
def test_brute_range_engines_agree(ps, q, r, exclude):
    scalar = brute_range_scalar(ps, q[0], q[1], r, exclude)
    vector = brute_range_np(ps, q[0], q[1], r, exclude)
    assert vector == scalar


@given(points, query, k_value)
@settings(max_examples=100, deadline=None)
def test_is_valid_knn_engines_agree(ps, q, k):
    """The validity verdict must not depend on the population size.

    ``is_valid_knn`` switches engines on fleet size; replicating the
    population past the threshold must keep the verdict for an answer
    drawn from the scalar oracle.
    """
    answer = {oid for _, oid in brute_knn_scalar(ps, q[0], q[1], k)}
    small = is_valid_knn(ps, q[0], q[1], k, answer)
    assert small
    if len(answer) < k:
        return  # padding would make a short answer legitimately invalid
    big_ps = ps + [(2_000_000.0 + i, 2_000_000.0) for i in range(80)]
    assert is_valid_knn(big_ps, q[0], q[1], k, answer)


# -- grid bulk operations ----------------------------------------------------


cells = st.integers(min_value=1, max_value=25)


def _snapshot(grid):
    return (
        {cell: frozenset(ids) for cell, ids in grid._buckets.items() if ids},
        dict(grid._positions),
        dict(grid._cells),
    )


@given(points, cells)
@settings(max_examples=120, deadline=None)
def test_bulk_load_matches_incremental_inserts(ps, n_cells):
    xs = np.array([p[0] for p in ps])
    ys = np.array([p[1] for p in ps])
    oids = np.arange(len(ps))

    incremental = UniformGrid(UNIVERSE, n_cells)
    for oid, (x, y) in enumerate(ps):
        incremental.insert(oid, x, y)

    bulk = UniformGrid(UNIVERSE, n_cells)
    bulk.bulk_load(oids, xs, ys)
    assert _snapshot(bulk) == _snapshot(incremental)

    rebuilt = UniformGrid(UNIVERSE, n_cells)
    rebuilt.insert(999, 1.0, 1.0)  # pre-existing content must vanish
    rebuilt.rebuild(oids, xs, ys)
    assert _snapshot(rebuilt) == _snapshot(incremental)


@given(points, cells)
@settings(max_examples=60, deadline=None)
def test_bulk_load_charges_like_inserts(ps, n_cells):
    from repro.metrics.cost import CostMeter

    m1, m2 = CostMeter(), CostMeter()
    incremental = UniformGrid(UNIVERSE, n_cells, meter=m1)
    for oid, (x, y) in enumerate(ps):
        incremental.insert(oid, x, y)
    bulk = UniformGrid(UNIVERSE, n_cells, meter=m2)
    bulk.bulk_load(
        np.arange(len(ps)),
        np.array([p[0] for p in ps]),
        np.array([p[1] for p in ps]),
    )
    assert m1.units == m2.units


def test_bulk_load_rejects_bad_input_without_mutating():
    grid = UniformGrid(UNIVERSE, 8)
    grid.insert(5, 10.0, 10.0)
    for oids, xs, ys in [
        ([1, 2], [1.0], [1.0, 2.0]),  # length mismatch
        ([1, 1], [1.0, 2.0], [1.0, 2.0]),  # duplicate ids
        ([1, 5], [1.0, 2.0], [1.0, 2.0]),  # id already indexed
        ([1, 2], [1.0, 5000.0], [1.0, 2.0]),  # outside universe
    ]:
        try:
            grid.bulk_load(np.array(oids), np.array(xs), np.array(ys))
        except Exception:
            pass
        else:  # pragma: no cover
            raise AssertionError(f"bulk_load accepted {oids}/{xs}/{ys}")
        assert len(grid) == 1 and grid.position_of(5) == (10.0, 10.0)
