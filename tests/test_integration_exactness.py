"""The central correctness claim, tested end to end:

in zero-latency mode, every algorithm publishes a valid kNN answer for
every query at every tick — across mobility models, k values, query
speeds, and edge populations.
"""

import pytest

from repro.experiments.algorithms import ALGORITHMS, build_system
from repro.experiments.config import RunConfig
from repro.geometry import Rect
from repro.mobility import Fleet, RandomWaypointModel, StationaryMover
from repro.server import QuerySpec
from repro.workloads import WorkloadSpec, build_workload
from tests.helpers import ExactnessChecker

ALL = sorted(ALGORITHMS)
TICKS = 60


def _run(algorithm, spec: WorkloadSpec, ticks=TICKS, **alg_params):
    fleet, queries = build_workload(spec)
    sim = build_system(
        RunConfig(algorithm, params=alg_params), fleet, queries
    )
    checker = ExactnessChecker(fleet, queries)
    sim.run(ticks, on_tick=checker)
    checker.assert_clean()
    return sim


BASE = WorkloadSpec(
    n_objects=150,
    n_queries=3,
    k=5,
    ticks=TICKS,
    warmup_ticks=1,
    seed=7,
    universe_size=10_000.0,
)


@pytest.mark.parametrize("algorithm", ALL)
def test_exact_on_default_workload(algorithm):
    _run(algorithm, BASE)


@pytest.mark.parametrize("algorithm", ALL)
@pytest.mark.parametrize("k", [1, 2, 9])
def test_exact_across_k(algorithm, k):
    _run(algorithm, BASE.but(k=k, seed=20 + k))


@pytest.mark.parametrize("algorithm", ALL)
def test_exact_with_static_queries(algorithm):
    _run(algorithm, BASE.but(query_speed=0.0, seed=31))


@pytest.mark.parametrize("algorithm", ALL)
def test_exact_with_fast_queries(algorithm):
    _run(algorithm, BASE.but(query_speed=200.0, seed=32))


@pytest.mark.parametrize("algorithm", ALL)
def test_exact_with_fast_objects(algorithm):
    _run(algorithm, BASE.but(speed_min=100.0, speed_max=200.0, seed=33))


@pytest.mark.parametrize("algorithm", ALL)
@pytest.mark.parametrize(
    "mobility", ["random_direction", "gaussian_cluster", "road_network"]
)
def test_exact_across_mobility_models(algorithm, mobility):
    _run(algorithm, BASE.but(mobility=mobility, seed=40, ticks=40), ticks=40)


@pytest.mark.parametrize("algorithm", ALL)
def test_exact_when_population_barely_exceeds_k(algorithm):
    # k = 5 with 6 objects + 2 focals: constant answer churn at the gap.
    _run(algorithm, BASE.but(n_objects=6, n_queries=2, k=5, seed=50))


@pytest.mark.parametrize("algorithm", ALL)
def test_exact_when_population_below_k(algorithm):
    # Fewer eligible objects than k: the trivial-installation path.
    _run(algorithm, BASE.but(n_objects=3, n_queries=1, k=8, seed=51))


@pytest.mark.parametrize("algorithm", ALL)
def test_exact_with_many_queries_sharing_focals(algorithm):
    spec = BASE.but(n_objects=80, n_queries=1, seed=52)
    fleet, queries = build_workload(spec)
    # Two extra queries anchored at ordinary population objects, one of
    # them carrying two queries with different k.
    queries = list(queries) + [
        QuerySpec(qid=10, focal_oid=0, k=3),
        QuerySpec(qid=11, focal_oid=0, k=7),
        QuerySpec(qid=12, focal_oid=5, k=4),
    ]
    sim = build_system(RunConfig(algorithm), fleet, queries)
    checker = ExactnessChecker(fleet, queries)
    sim.run(TICKS, on_tick=checker)
    checker.assert_clean()


@pytest.mark.parametrize("algorithm", ["DKNN-P", "DKNN-B", "DKNN-G"])
def test_exact_with_parked_population(algorithm):
    """All objects static, query moves through them."""
    universe = Rect(0, 0, 10_000, 10_000)
    import random

    rng = random.Random(3)
    movers = [
        StationaryMover(
            universe, rng.uniform(0, 10_000), rng.uniform(0, 10_000)
        )
        for _ in range(60)
    ]
    query_mover = RandomWaypointModel(universe, 80, 120).make_mover(rng)
    fleet = Fleet(movers + [query_mover], seed=4)
    queries = [QuerySpec(qid=0, focal_oid=60, k=6)]
    sim = build_system(RunConfig(algorithm), fleet, queries)
    checker = ExactnessChecker(fleet, queries)
    sim.run(TICKS, on_tick=checker)
    checker.assert_clean()


@pytest.mark.parametrize("algorithm", ["DKNN-P"])
def test_exact_with_extreme_thetas(algorithm):
    for theta in (1.0, 5000.0):
        _run(algorithm, BASE.but(seed=60), theta=theta)


@pytest.mark.parametrize("algorithm", ["DKNN-P", "DKNN-B", "DKNN-G"])
def test_exact_with_zero_s_cap(algorithm):
    _run(algorithm, BASE.but(seed=61), s_cap=0.0)


def test_per_with_period_is_stale_but_valid_on_eval_ticks():
    spec = BASE.but(seed=62)
    fleet, queries = build_workload(spec)
    sim = build_system(RunConfig("PER", params={"period": 5}), fleet, queries)
    from repro.metrics.accuracy import is_valid_knn

    valid_on_eval = []
    def check(s):
        # (tick - 1) % 5 == 0 are evaluation ticks.
        if (s.tick - 1) % 5 == 0:
            for q in queries:
                qx, qy = fleet.positions[q.focal_oid]
                valid_on_eval.append(
                    is_valid_knn(
                        fleet.positions, qx, qy, q.k,
                        s.server.answers[q.qid], {q.focal_oid},
                    )
                )
    sim.run(TICKS, on_tick=check)
    assert valid_on_eval and all(valid_on_eval)
