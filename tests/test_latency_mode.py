"""One-tick-latency behavior: answers may go stale, never wrong-shaped.

Zero-latency mode is where exactness is proven; latency mode is the E8
measurement. These tests pin down the contract: the protocols keep
running (no deadlock, no protocol error), answers keep roughly tracking
the truth, and the zero-latency configuration dominates.
"""

import pytest

from repro.experiments import run_once
from repro.experiments.algorithms import build_system
from repro.experiments.config import RunConfig
from repro.net.simulator import ONE_TICK_LATENCY
from repro.workloads import WorkloadSpec, build_workload

SPEC = WorkloadSpec(
    n_objects=200, n_queries=2, k=5, seed=71, ticks=60, warmup_ticks=10
)

DISTRIBUTED = ["DKNN-P", "DKNN-B", "DKNN-G"]


@pytest.mark.parametrize("algorithm", DISTRIBUTED)
def test_latency_mode_runs_to_completion(algorithm):
    fleet, queries = build_workload(SPEC)
    cfg = RunConfig(algorithm, latency=ONE_TICK_LATENCY)
    sim = build_system(cfg, fleet, queries)
    sim.run(40)
    for q in queries:
        answer = sim.server.answers[q.qid]
        assert len(answer) == q.k
        assert len(set(answer)) == q.k
        assert q.focal_oid not in answer


@pytest.mark.parametrize("algorithm", DISTRIBUTED)
def test_latency_answers_track_truth_closely(algorithm):
    m = run_once(
        RunConfig(algorithm, latency=ONE_TICK_LATENCY), SPEC, accuracy_every=3
    )
    # Staleness costs some exactness but the answers remain close.
    assert m.mean_overlap > 0.75


def test_zero_latency_dominates_one_tick():
    fresh = run_once(RunConfig("DKNN-B"), SPEC, accuracy_every=3)
    stale = run_once(
        RunConfig("DKNN-B", latency=ONE_TICK_LATENCY), SPEC, accuracy_every=3
    )
    assert fresh.mean_overlap >= stale.mean_overlap
    assert fresh.exactness == 1.0


def test_per_period_trades_messages_for_overlap():
    dense = run_once(
        RunConfig("PER", params={"period": 1}), SPEC, accuracy_every=3
    )
    sparse = run_once(
        RunConfig("PER", params={"period": 10}), SPEC, accuracy_every=3
    )
    # Same uplink stream, fewer pushes; the loss shows in overlap.
    assert sparse.mean_overlap < dense.mean_overlap
    assert dense.exactness == 1.0
