"""Unit tests for cost metering and accuracy metrics."""

import pytest

from repro.errors import ReproError
from repro.metrics import (
    AccuracyTracker,
    CostMeter,
    charge,
    is_valid_knn,
    overlap_fraction,
)


class TestCostMeter:
    def test_charge_accumulates(self):
        m = CostMeter()
        m.charge(CostMeter.DIST_CALC)
        m.charge(CostMeter.DIST_CALC, 4)
        assert m.of(CostMeter.DIST_CALC) == 5
        assert m.total == 5

    def test_categories_independent(self):
        m = CostMeter()
        m.charge(CostMeter.DIST_CALC)
        m.charge(CostMeter.CELL_VISIT, 2)
        assert m.of(CostMeter.DIST_CALC) == 1
        assert m.of(CostMeter.CELL_VISIT) == 2
        assert m.total == 3

    def test_snapshot_and_delta(self):
        m = CostMeter()
        m.charge("a", 3)
        snap = m.snapshot()
        m.charge("a", 2)
        m.charge("b", 1)
        d = m.delta_since(snap)
        assert d.of("a") == 2 and d.of("b") == 1 and d.total == 3

    def test_merge(self):
        a, b = CostMeter(), CostMeter()
        a.charge("x", 1)
        b.charge("x", 2)
        a.merge(b)
        assert a.of("x") == 3

    def test_as_dict(self):
        m = CostMeter()
        m.charge("x", 2)
        assert m.as_dict() == {"x": 2}

    def test_module_level_charge_tolerates_none(self):
        charge(None, "anything")  # must not raise
        m = CostMeter()
        charge(m, "y", 7)
        assert m.of("y") == 7


class TestIsValidKnn:
    POS = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]

    def test_canonical_answer_is_valid(self):
        assert is_valid_knn(self.POS, 0, 0, 2, [0, 1])

    def test_wrong_member_is_invalid(self):
        assert not is_valid_knn(self.POS, 0, 0, 2, [0, 3])

    def test_wrong_cardinality_is_invalid(self):
        assert not is_valid_knn(self.POS, 0, 0, 2, [0])
        assert not is_valid_knn(self.POS, 0, 0, 2, [0, 1, 2])

    def test_duplicates_are_invalid(self):
        assert not is_valid_knn(self.POS, 0, 0, 2, [0, 0])

    def test_excluded_member_is_invalid(self):
        assert not is_valid_knn(self.POS, 0, 0, 2, [0, 1], exclude={0})

    def test_exclusion_shrinks_eligible_set(self):
        assert is_valid_knn(self.POS, 0, 0, 2, [1, 2], exclude={0})

    def test_tie_tolerance(self):
        pos = [(1.0, 0.0), (0.0, 1.0), (5.0, 0.0)]
        # Objects 0 and 1 are equidistant: either is a valid 1-NN.
        assert is_valid_knn(pos, 0, 0, 1, [0])
        assert is_valid_knn(pos, 0, 0, 1, [1])

    def test_k_larger_than_population(self):
        assert is_valid_knn(self.POS, 0, 0, 10, [0, 1, 2, 3])
        assert not is_valid_knn(self.POS, 0, 0, 10, [0, 1, 2])

    def test_empty_everything(self):
        assert is_valid_knn([(0.0, 0.0)], 0, 0, 3, [], exclude={0})


class TestOverlap:
    def test_full_overlap(self):
        assert overlap_fraction([1, 2, 3], [3, 2, 1]) == 1.0

    def test_partial_overlap(self):
        assert overlap_fraction([1, 2, 3, 4], [1, 2, 9, 10]) == 0.5

    def test_no_overlap(self):
        assert overlap_fraction([1], [2]) == 0.0

    def test_empty_truth_counts_as_match(self):
        assert overlap_fraction([], [5]) == 1.0


class TestAccuracyTracker:
    def test_tracks_valid_and_overlap(self):
        t = AccuracyTracker()
        pos = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
        t.observe(pos, 0, 0, 1, [0], [0])
        t.observe(pos, 0, 0, 1, [2], [0])
        assert t.checked == 2
        assert t.exactness == 0.5
        assert t.mean_overlap == 0.5

    def test_empty_tracker_raises(self):
        t = AccuracyTracker()
        with pytest.raises(ReproError):
            t.exactness
        with pytest.raises(ReproError):
            t.mean_overlap
