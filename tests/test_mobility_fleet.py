"""Unit tests for the Fleet."""

import random

import pytest

from repro.errors import MobilityError
from repro.geometry import Rect, dist
from repro.mobility import (
    Fleet,
    RandomWaypointModel,
    StationaryMover,
)
from repro.mobility.base import Mover


class TestConstruction:
    def test_empty_fleet_raises(self):
        with pytest.raises(MobilityError):
            Fleet([])

    def test_from_model_size(self, universe):
        fleet = Fleet.from_model(RandomWaypointModel(universe), 25, seed=1)
        assert fleet.n == 25
        assert len(fleet.positions) == 25

    def test_from_model_zero_objects_raises(self, universe):
        with pytest.raises(MobilityError):
            Fleet.from_model(RandomWaypointModel(universe), 0)

    def test_mixed_universes_raise(self, universe, small_universe):
        movers = [
            StationaryMover(universe, 1, 1),
            StationaryMover(small_universe, 1, 1),
        ]
        with pytest.raises(MobilityError):
            Fleet(movers)

    def test_extra_movers_get_trailing_ids(self, universe):
        extra = [StationaryMover(universe, 5, 5)]
        fleet = Fleet.from_model(
            RandomWaypointModel(universe), 10, seed=1, extra_movers=extra
        )
        assert fleet.n == 11
        assert fleet.position_of(10) == (5.0, 5.0)
        assert fleet.max_speed_of(10) == 0.0


class TestAdvance:
    def test_tick_counter(self, small_fleet):
        assert small_fleet.tick == 0
        small_fleet.advance()
        small_fleet.advance()
        assert small_fleet.tick == 2

    def test_positions_stay_inside_universe(self, small_fleet):
        for _ in range(50):
            small_fleet.advance()
            for x, y in small_fleet.positions:
                assert small_fleet.universe.contains_point(x, y)

    def test_max_speed_respected(self, small_fleet):
        for _ in range(50):
            before = list(small_fleet.positions)
            small_fleet.advance()
            for (x1, y1), (x2, y2) in zip(before, small_fleet.positions):
                assert dist(x1, y1, x2, y2) <= small_fleet.max_speed + 1e-6

    def test_determinism(self, universe):
        def run():
            fleet = Fleet.from_model(
                RandomWaypointModel(universe), 20, seed=77
            )
            for _ in range(30):
                fleet.advance()
            return list(fleet.positions)

        assert run() == run()

    def test_different_seeds_differ(self, universe):
        a = Fleet.from_model(RandomWaypointModel(universe), 20, seed=1)
        b = Fleet.from_model(RandomWaypointModel(universe), 20, seed=2)
        assert a.positions != b.positions


class TestSafetyEnforcement:
    def test_lying_mover_is_caught(self, universe):
        class Liar(Mover):
            def __init__(self):
                super().__init__(universe, max_speed=1.0)

            def start(self, rng):
                return (0.0, 0.0)

            def step(self, x, y, rng):
                return (x + 100.0, y)  # far beyond declared max_speed

        fleet = Fleet([Liar()])
        with pytest.raises(MobilityError):
            fleet.advance()

    def test_escaping_mover_is_caught(self, universe):
        class Escaper(Mover):
            def __init__(self):
                super().__init__(universe, max_speed=1e9)

            def start(self, rng):
                return (0.0, 0.0)

            def step(self, x, y, rng):
                return (-5.0, 0.0)

        fleet = Fleet([Escaper()])
        with pytest.raises(MobilityError):
            fleet.advance()

    def test_start_outside_universe_is_caught(self, universe):
        class BadStart(Mover):
            def __init__(self):
                super().__init__(universe, max_speed=1.0)

            def start(self, rng):
                return (-1.0, 0.0)

            def step(self, x, y, rng):
                return (x, y)

        with pytest.raises(MobilityError):
            Fleet([BadStart()])

    def test_fleet_max_speed_is_max_over_movers(self, universe):
        movers = [
            StationaryMover(universe, 1, 1),
            RandomWaypointModel(universe, 10, 35).make_mover(random.Random(0)),
        ]
        assert Fleet(movers).max_speed == 35.0
