"""Unit tests for the mobility models."""

import math
import random

import pytest

from repro.errors import MobilityError
from repro.geometry import Rect, dist
from repro.mobility import (
    GaussianClusterModel,
    LinearMover,
    RandomDirectionModel,
    RandomWaypointModel,
    RoadNetworkModel,
    StationaryMover,
    build_grid_network,
)

MODELS = [
    lambda u: RandomWaypointModel(u, 10, 30, pause_max=3),
    lambda u: RandomDirectionModel(u, 10, 30),
    lambda u: GaussianClusterModel(u, n_hotspots=4, sigma=200, speed_min=10, speed_max=30),
    lambda u: RoadNetworkModel(u, rows=6, cols=6, speed_min=10, speed_max=30),
]


@pytest.mark.parametrize("factory", MODELS)
def test_mover_respects_universe_and_speed(universe, factory):
    model = factory(universe)
    rng = random.Random(5)
    mover = model.make_mover(rng)
    x, y = mover.start(rng)
    assert universe.contains_point(x, y)
    for _ in range(300):
        nx, ny = mover.step(x, y, rng)
        assert universe.contains_point(nx, ny)
        assert dist(x, y, nx, ny) <= model.max_speed + 1e-6
        x, y = nx, ny


@pytest.mark.parametrize("factory", MODELS)
def test_model_is_deterministic_given_seed(universe, factory):
    def trajectory():
        model = factory(universe)
        rng = random.Random(42)
        mover = model.make_mover(rng)
        pos = mover.start(rng)
        out = [pos]
        for _ in range(50):
            pos = mover.step(pos[0], pos[1], rng)
            out.append(pos)
        return out

    assert trajectory() == trajectory()


class TestRandomWaypoint:
    def test_invalid_speed_range(self, universe):
        with pytest.raises(MobilityError):
            RandomWaypointModel(universe, 30, 10)

    def test_negative_pause_raises(self, universe):
        with pytest.raises(MobilityError):
            RandomWaypointModel(universe, 1, 2, pause_max=-1)

    def test_pausing_produces_repeated_positions(self):
        small = Rect(0, 0, 500, 500)
        model = RandomWaypointModel(small, 50, 50, pause_max=10)
        rng = random.Random(0)
        mover = model.make_mover(rng)
        pos = mover.start(rng)
        repeats = 0
        for _ in range(500):
            nxt = mover.step(pos[0], pos[1], rng)
            if nxt == pos:
                repeats += 1
            pos = nxt
        assert repeats > 0

    def test_zero_speed_objects_never_move_off_waypoint_line(self, universe):
        model = RandomWaypointModel(universe, 0, 0)
        rng = random.Random(0)
        mover = model.make_mover(rng)
        pos = mover.start(rng)
        assert mover.step(pos[0], pos[1], rng) == pos


class TestRandomDirection:
    def test_invalid_leg_range(self, universe):
        with pytest.raises(MobilityError):
            RandomDirectionModel(universe, 1, 2, leg_min=5, leg_max=2)

    def test_speed_too_large_for_universe(self):
        small = Rect(0, 0, 10, 10)
        with pytest.raises(MobilityError):
            RandomDirectionModel(small, 1, 50)


class TestGaussianCluster:
    def test_objects_cluster_near_hotspots(self, universe):
        model = GaussianClusterModel(
            universe, n_hotspots=3, sigma=150, speed_min=20, speed_max=40, seed=3
        )
        rng = random.Random(7)
        positions = []
        for _ in range(150):
            mover = model.make_mover(rng)
            pos = mover.start(rng)
            for _ in range(30):
                pos = mover.step(pos[0], pos[1], rng)
            positions.append(pos)
        near = sum(
            1
            for (x, y) in positions
            if any(dist(x, y, hx, hy) < 4 * 150 for hx, hy in model.hotspots)
        )
        assert near / len(positions) > 0.9

    def test_zipf_skews_assignment(self, universe):
        model = GaussianClusterModel(
            universe, n_hotspots=5, zipf_s=2.0, seed=3
        )
        rng = random.Random(7)
        first = model.hotspots[0]
        assigned_first = sum(
            1 for _ in range(300) if model.make_mover(rng).hotspot == first
        )
        assert assigned_first > 300 / 5  # far above uniform share

    def test_invalid_params(self, universe):
        with pytest.raises(MobilityError):
            GaussianClusterModel(universe, n_hotspots=0)
        with pytest.raises(MobilityError):
            GaussianClusterModel(universe, sigma=0)
        with pytest.raises(MobilityError):
            GaussianClusterModel(universe, zipf_s=-1)


class TestRoadNetwork:
    def test_grid_network_spans_universe(self, universe):
        g = build_grid_network(universe, 5, 5, jitter=0.1, seed=1)
        xs = [g.nodes[n]["pos"][0] for n in g.nodes]
        ys = [g.nodes[n]["pos"][1] for n in g.nodes]
        assert min(xs) == universe.xmin and max(xs) == universe.xmax
        assert min(ys) == universe.ymin and max(ys) == universe.ymax

    def test_edges_have_lengths(self, universe):
        g = build_grid_network(universe, 4, 4, jitter=0.0, seed=1)
        for u, v in g.edges:
            assert g.edges[u, v]["length"] > 0

    def test_too_small_grid_raises(self, universe):
        with pytest.raises(MobilityError):
            build_grid_network(universe, 1, 5, jitter=0.0, seed=1)

    def test_invalid_jitter(self, universe):
        with pytest.raises(MobilityError):
            RoadNetworkModel(universe, jitter=0.7)

    def test_positions_stay_on_network_edges(self, universe):
        model = RoadNetworkModel(universe, rows=4, cols=4, jitter=0.0, seed=2)
        rng = random.Random(9)
        mover = model.make_mover(rng)
        pos = mover.start(rng)
        g = model.graph
        for _ in range(100):
            pos = mover.step(pos[0], pos[1], rng)
            on_edge = False
            for u, v in g.edges:
                ux, uy = g.nodes[u]["pos"]
                vx, vy = g.nodes[v]["pos"]
                seg = dist(ux, uy, vx, vy)
                if (
                    abs(dist(ux, uy, *pos) + dist(*pos, vx, vy) - seg)
                    < 1e-6
                ):
                    on_edge = True
                    break
            assert on_edge


class TestTrivialMovers:
    def test_stationary_never_moves(self, universe):
        mover = StationaryMover(universe, 100, 200)
        rng = random.Random(0)
        pos = mover.start(rng)
        assert pos == (100.0, 200.0)
        assert mover.step(*pos, rng) == pos
        assert mover.max_speed == 0.0

    def test_stationary_outside_universe_raises(self, universe):
        with pytest.raises(MobilityError):
            StationaryMover(universe, -5, 0)

    def test_linear_moves_at_constant_velocity(self, universe):
        mover = LinearMover(universe, 100, 100, 3, 4)
        rng = random.Random(0)
        pos = mover.start(rng)
        nxt = mover.step(*pos, rng)
        assert nxt == (103.0, 104.0)
        assert mover.max_speed == pytest.approx(5.0)

    def test_linear_reflects_at_walls(self):
        small = Rect(0, 0, 10, 10)
        mover = LinearMover(small, 9, 5, 3, 0)
        rng = random.Random(0)
        pos = mover.start(rng)
        for _ in range(50):
            pos = mover.step(*pos, rng)
            assert small.contains_point(*pos)
