"""Unit tests for trace record / save / load / replay."""

import pytest

from repro.errors import MobilityError
from repro.geometry import Rect
from repro.mobility import Fleet, RandomWaypointModel, ReplayFleet, Trace, record_trace


@pytest.fixture
def recorded(universe):
    fleet = Fleet.from_model(
        RandomWaypointModel(universe, 20, 40), 15, seed=3
    )
    return record_trace(fleet, 20)


class TestRecord:
    def test_frame_count_includes_initial(self, recorded):
        assert recorded.ticks == 21

    def test_object_count(self, recorded):
        assert recorded.n == 15

    def test_negative_ticks_raise(self, universe):
        fleet = Fleet.from_model(RandomWaypointModel(universe), 3, seed=1)
        with pytest.raises(MobilityError):
            record_trace(fleet, -1)

    def test_max_step_bounded_by_model_speed(self, recorded):
        assert recorded.max_step() <= 40.0 + 1e-6


class TestValidation:
    def test_empty_frames_raise(self, universe):
        with pytest.raises(MobilityError):
            Trace(universe, [])

    def test_ragged_frames_raise(self, universe):
        with pytest.raises(MobilityError):
            Trace(universe, [[(0.0, 0.0)], [(0.0, 0.0), (1.0, 1.0)]])

    def test_empty_objects_raise(self, universe):
        with pytest.raises(MobilityError):
            Trace(universe, [[]])


class TestCsvRoundTrip:
    def test_roundtrip_exact(self, recorded, tmp_path):
        path = str(tmp_path / "trace.csv")
        recorded.save_csv(path)
        loaded = Trace.load_csv(path)
        assert loaded.universe == recorded.universe
        assert loaded.frames == recorded.frames

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("tick,oid,x,y\n0,0,1.0,2.0\n")
        with pytest.raises(MobilityError):
            Trace.load_csv(str(path))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(MobilityError):
            Trace.load_csv(str(path))


class TestReplay:
    def test_replay_matches_recording(self, universe):
        fleet = Fleet.from_model(
            RandomWaypointModel(universe, 20, 40), 10, seed=8
        )
        trace = record_trace(fleet, 15)
        replay = trace.replay()
        assert isinstance(replay, ReplayFleet)
        for tick in range(15):
            assert list(replay.positions) == trace.frames[tick]
            replay.advance()
        assert list(replay.positions) == trace.frames[15]

    def test_replay_freezes_after_end(self, recorded):
        replay = recorded.replay()
        for _ in range(recorded.ticks + 5):
            replay.advance()
        assert list(replay.positions) == recorded.frames[-1]
        assert replay.tick == recorded.ticks + 5

    def test_replay_exposes_fleet_interface(self, recorded):
        replay = recorded.replay()
        assert replay.n == recorded.n
        assert replay.max_speed == recorded.max_step()
        assert replay.position_of(0) == recorded.frames[0][0]
        assert replay.max_speed_of(3) == replay.max_speed
