"""Unit tests for the simulated channel."""

import pytest

from repro.errors import NetworkError
from repro.net.channel import Channel
from repro.net.message import BROADCAST_ID, SERVER_ID, MessageKind


@pytest.fixture
def channel():
    ch = Channel()
    ch.register(SERVER_ID)
    ch.register(0)
    ch.register(1)
    return ch


class TestRegistration:
    def test_duplicate_registration_raises(self, channel):
        with pytest.raises(NetworkError):
            channel.register(0)

    def test_broadcast_id_not_registrable(self, channel):
        with pytest.raises(NetworkError):
            channel.register(BROADCAST_ID)

    def test_membership_queries(self, channel):
        assert channel.is_registered(0)
        assert not channel.is_registered(99)
        assert channel.node_ids == {SERVER_ID, 0, 1}


class TestSend:
    def test_unknown_sender_raises(self, channel):
        with pytest.raises(NetworkError):
            channel.send(MessageKind.PROBE, 42, 0)

    def test_unknown_destination_raises(self, channel):
        with pytest.raises(NetworkError):
            channel.send(MessageKind.PROBE, SERVER_ID, 42)

    def test_send_queues_and_accounts(self, channel):
        channel.send(MessageKind.PROBE, SERVER_ID, 0)
        assert channel.pending() == 1
        assert channel.stats.total_messages == 1

    def test_messages_stamped_with_tick(self, channel):
        channel.begin_tick(7)
        msg = channel.send(MessageKind.PROBE, SERVER_ID, 0)
        assert msg.sent_tick == 7


class TestCollect:
    def test_collect_drains_queue(self, channel):
        channel.send(MessageKind.PROBE, SERVER_ID, 0)
        channel.send(MessageKind.PROBE, SERVER_ID, 1)
        msgs = channel.collect()
        assert len(msgs) == 2
        assert channel.pending() == 0

    def test_collect_preserves_order(self, channel):
        channel.send(MessageKind.PROBE, SERVER_ID, 0)
        channel.send(MessageKind.REVOKE_REGION, SERVER_ID, 1)
        kinds = [m.kind for m in channel.collect()]
        assert kinds == [MessageKind.PROBE, MessageKind.REVOKE_REGION]

    def test_broadcast_reception_accounting(self, channel):
        channel.send(MessageKind.COLLECT, SERVER_ID, BROADCAST_ID)
        channel.collect()
        # three registered nodes, sender excluded
        assert channel.stats.broadcast_receptions == 2

    def test_collect_sent_before_holds_back_recent(self, channel):
        channel.begin_tick(1)
        channel.send(MessageKind.PROBE, SERVER_ID, 0)
        channel.begin_tick(2)
        channel.send(MessageKind.PROBE, SERVER_ID, 1)
        ready = channel.collect_sent_before(2)
        assert len(ready) == 1
        assert ready[0].dst == 0
        assert channel.pending() == 1

    def test_collect_sent_before_eventually_delivers(self, channel):
        channel.begin_tick(1)
        channel.send(MessageKind.PROBE, SERVER_ID, 0)
        assert channel.collect_sent_before(1) == []
        assert len(channel.collect_sent_before(2)) == 1


class TestGeocast:
    """Geocast messages pass through the channel unaccounted: the
    simulator records coverage-based receptions, not the channel."""

    def _geocast(self, channel):
        from repro.core.protocol import CollectRequest
        from repro.net.message import GEOCAST_ID

        return channel.send(
            MessageKind.COLLECT,
            SERVER_ID,
            GEOCAST_ID,
            CollectRequest(0, 50.0, 50.0, 25.0),
        )

    def test_geocast_id_not_registrable(self, channel):
        from repro.net.message import GEOCAST_ID

        with pytest.raises(NetworkError):
            channel.register(GEOCAST_ID)

    def test_collect_passes_geocast_without_reception_accounting(
        self, channel
    ):
        self._geocast(channel)
        msgs = channel.collect()
        assert len(msgs) == 1
        assert channel.stats.broadcast_receptions == 0
        assert channel.stats.delivered == 0

    def test_collect_sent_before_passes_geocast_through(self, channel):
        channel.begin_tick(1)
        self._geocast(channel)
        assert channel.collect_sent_before(1) == []  # still in flight
        ready = channel.collect_sent_before(2)
        assert len(ready) == 1
        assert ready[0].payload.covers(50.0, 50.0)
        # reception accounting stays with the simulator in latency mode too
        assert channel.stats.broadcast_receptions == 0
