"""Unit and regression tests for the fault-injection layer.

Covers :class:`FaultPlan` validation and queries, the perturbations of
:class:`FaultyChannel` (forced with probability-1 knobs so no sampling
is involved), node-down handling in the simulator, and the layer's
headline guarantee: a zero-fault run is bit-identical to one that never
mentioned faults at all.
"""

import pytest

from repro.errors import FaultError
from repro.experiments.algorithms import build_system
from repro.experiments.config import RunConfig
from repro.mobility import Fleet, StationaryMover
from repro.net.channel import Channel
from repro.net.faults import FaultPlan, FaultyChannel
from repro.net.message import SERVER_ID, MessageKind
from repro.net.simulator import RoundSimulator
from repro.net.node import MobileNode, ServerNodeBase
from repro.workloads import WorkloadSpec, build_workload
from tests.helpers import ExactnessChecker


class TestFaultPlanValidation:
    @pytest.mark.parametrize(
        "field", ["drop_uplink", "drop_downlink", "dup_prob", "delay_prob"]
    )
    def test_probability_out_of_range_raises(self, field):
        with pytest.raises(FaultError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(FaultError):
            FaultPlan(**{field: -0.1})

    def test_delay_ticks_must_be_positive(self):
        with pytest.raises(FaultError):
            FaultPlan(delay_prob=0.1, delay_ticks=0)

    def test_empty_blackout_window_raises(self):
        with pytest.raises(FaultError):
            FaultPlan(blackouts=[(3, 10, 10)])

    def test_negative_crash_tick_raises(self):
        with pytest.raises(FaultError):
            FaultPlan(crashes=[(3, -1)])

    def test_negative_until_tick_raises(self):
        with pytest.raises(FaultError):
            FaultPlan(drop_uplink=0.1, until_tick=-5)


class TestFaultPlanQueries:
    def test_default_plan_is_disabled(self):
        assert not FaultPlan().enabled
        assert not FaultPlan(seed=123).enabled  # seed alone is inert

    def test_any_knob_enables(self):
        assert FaultPlan(drop_uplink=0.1).enabled
        assert FaultPlan(dup_prob=0.1).enabled
        assert FaultPlan(blackouts=[(0, 1, 2)]).enabled
        assert FaultPlan(crashes=[(0, 5)]).enabled

    def test_lossy_at_respects_until_tick(self):
        plan = FaultPlan(drop_uplink=0.5, until_tick=10)
        assert plan.lossy_at(9)
        assert not plan.lossy_at(10)
        assert not plan.lossy_at(11)

    def test_is_down_blackout_window_half_open(self):
        plan = FaultPlan(blackouts=[(7, 5, 8)])
        assert not plan.is_down(7, 4)
        assert plan.is_down(7, 5)
        assert plan.is_down(7, 7)
        assert not plan.is_down(7, 8)
        assert not plan.is_down(8, 6)  # other nodes unaffected

    def test_is_down_crash_is_permanent(self):
        plan = FaultPlan(crashes=[(3, 20)])
        assert not plan.is_down(3, 19)
        assert plan.is_down(3, 20)
        assert plan.is_down(3, 10_000)

    def test_drop_prob_by_direction(self):
        plan = FaultPlan(drop_uplink=0.1, drop_downlink=0.4)
        ch = FaultyChannel(plan)
        ch.register(SERVER_ID)
        ch.register(0)
        up = ch.send(MessageKind.LOCATION_UPDATE, 0, SERVER_ID)
        down = ch.send(MessageKind.PROBE, SERVER_ID, 0)
        assert plan.drop_prob(up) == 0.1
        assert plan.drop_prob(down) == 0.4


@pytest.fixture
def _faulty():
    def make(**kwargs):
        ch = FaultyChannel(FaultPlan(**kwargs))
        ch.register(SERVER_ID)
        ch.register(0)
        ch.register(1)
        return ch

    return make


class TestFaultyChannel:
    def test_certain_drop_eats_message_but_counts_send(self, _faulty):
        ch = _faulty(drop_uplink=1.0)
        ch.send(MessageKind.LOCATION_UPDATE, 0, SERVER_ID)
        assert ch.pending() == 0
        assert ch.stats.total_messages == 1  # transmitted, then lost
        assert ch.stats.dropped == 1

    def test_drop_direction_is_respected(self, _faulty):
        ch = _faulty(drop_uplink=1.0)
        ch.send(MessageKind.PROBE, SERVER_ID, 0)  # downlink: untouched
        assert ch.pending() == 1
        assert ch.stats.dropped == 0

    def test_certain_duplicate_queues_twice(self, _faulty):
        ch = _faulty(dup_prob=1.0)
        ch.send(MessageKind.PROBE, SERVER_ID, 0)
        assert ch.pending() == 2
        assert ch.stats.duplicated == 1
        assert ch.stats.total_messages == 1  # one transmission

    def test_certain_delay_holds_then_releases(self, _faulty):
        ch = _faulty(delay_prob=1.0, delay_ticks=2)
        ch.begin_tick(1)
        ch.send(MessageKind.PROBE, SERVER_ID, 0)
        assert ch.pending() == 0
        assert ch.in_flight() == 1
        assert ch.stats.delayed == 1
        ch.begin_tick(2)
        assert ch.pending() == 0  # still held
        ch.begin_tick(3)
        assert ch.pending() == 1  # released at sent_tick + delay_ticks
        assert len(ch.collect()) == 1

    def test_send_from_downed_node_is_suppressed(self, _faulty):
        ch = _faulty(blackouts=[(0, 0, 10)])
        ch.begin_tick(5)
        ch.send(MessageKind.LOCATION_UPDATE, 0, SERVER_ID)
        assert ch.pending() == 0
        assert ch.stats.total_messages == 0  # radio dead: never transmitted
        assert ch.stats.dropped == 1

    def test_unicast_to_downed_receiver_drops_on_delivery(self, _faulty):
        ch = _faulty(blackouts=[(1, 0, 10)])
        ch.begin_tick(5)
        ch.send(MessageKind.PROBE, SERVER_ID, 1)
        ch.collect()
        assert ch.stats.dropped == 1
        assert ch.stats.delivered == 0

    def test_until_tick_turns_faults_off(self, _faulty):
        ch = _faulty(drop_uplink=1.0, until_tick=5)
        ch.begin_tick(4)
        ch.send(MessageKind.LOCATION_UPDATE, 0, SERVER_ID)
        assert ch.pending() == 0  # still lossy
        ch.begin_tick(5)
        ch.send(MessageKind.LOCATION_UPDATE, 0, SERVER_ID)
        assert ch.pending() == 1  # faults ceased

    def test_fault_decisions_are_deterministic(self):
        def trace(seed):
            ch = FaultyChannel(FaultPlan(seed=seed, drop_uplink=0.5))
            ch.register(SERVER_ID)
            ch.register(0)
            out = []
            for t in range(1, 30):
                ch.begin_tick(t)
                ch.send(MessageKind.LOCATION_UPDATE, 0, SERVER_ID)
                out.append(ch.pending())
            return out

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)  # seed actually matters


class _SilentServer(ServerNodeBase):
    def __init__(self):
        super().__init__()
        self.received = []

    def on_message(self, msg):
        self.received.append(msg)


class _TickSender(MobileNode):
    def on_tick_start(self, tick):
        self.send_server(MessageKind.LOCATION_UPDATE, None)


class TestSimulatorNodeFaults:
    def _sim(self, universe, plan, n=2):
        movers = [
            StationaryMover(universe, 10.0 * (i + 1), 10.0) for i in range(n)
        ]
        fleet = Fleet(movers)
        server = _SilentServer()
        mobiles = [_TickSender(i, fleet) for i in range(n)]
        return RoundSimulator(fleet, server, mobiles, faults=plan), server

    def test_crashed_node_stops_sending(self, universe):
        sim, server = self._sim(universe, FaultPlan(crashes=[(0, 3)]))
        sim.run(5)
        senders = [m.src for m in server.received]
        assert senders.count(0) == 2  # ticks 1 and 2 only
        assert senders.count(1) == 5

    def test_blackout_is_temporary(self, universe):
        sim, server = self._sim(universe, FaultPlan(blackouts=[(0, 2, 4)]))
        sim.run(5)
        senders = [m.src for m in server.received]
        assert senders.count(0) == 3  # ticks 1, 4, 5
        assert senders.count(1) == 5


def _stats_fingerprint(stats):
    return (
        dict(stats.sent_by_kind),
        dict(stats.bytes_by_kind),
        dict(stats.sent_by_direction),
        stats.broadcast_receptions,
        stats.delivered,
        stats.dropped,
        stats.duplicated,
        stats.delayed,
        stats.retransmits,
    )


def _run_fingerprint(faults, **params):
    spec = WorkloadSpec(
        n_objects=80, n_queries=2, k=4, ticks=20, warmup_ticks=1, seed=31
    )
    fleet, queries = build_workload(spec)
    cfg = RunConfig("DKNN-P", faults=faults, params=params)
    sim = build_system(cfg, fleet, queries)
    sim.run(20)
    answers = {q.qid: list(sim.server.answers[q.qid]) for q in queries}
    return sim, answers, _stats_fingerprint(sim.channel.stats)


class TestZeroFaultBitIdentity:
    """A disabled plan must be indistinguishable from no plan at all."""

    def test_disabled_plan_normalized_away(self):
        sim, _, _ = _run_fingerprint(FaultPlan(seed=4242))
        assert sim.faults is None
        assert type(sim.channel) is Channel  # not even a FaultyChannel

    def test_disabled_plan_matches_seed_run_exactly(self):
        _, ans_none, stats_none = _run_fingerprint(None)
        _, ans_zero, stats_zero = _run_fingerprint(FaultPlan())
        _, ans_seeded, stats_seeded = _run_fingerprint(FaultPlan(seed=99))
        assert ans_none == ans_zero == ans_seeded
        assert stats_none == stats_zero == stats_seeded
        assert stats_none[-4:] == (0, 0, 0, 0)  # no drops/dups/delays/rexmits

    def test_hardening_alone_stays_exact_on_perfect_network(self):
        spec = WorkloadSpec(
            n_objects=80, n_queries=2, k=4, ticks=20, warmup_ticks=1, seed=31
        )
        fleet, queries = build_workload(spec)
        cfg = RunConfig(
            "DKNN-P",
            params=dict(
                fault_tolerant=True,
                ack_timeout=2,
                lease_ticks=8,
                violation_retry=2,
            ),
        )
        sim = build_system(cfg, fleet, queries)
        checker = ExactnessChecker(fleet, queries)
        sim.run(20, on_tick=checker)
        checker.assert_clean()
        # Acks flow but no repair traffic: nothing was ever lost.
        assert sim.channel.stats.retransmits == 0
        assert sim.channel.stats.messages_of(MessageKind.INSTALL_ACK) > 0
