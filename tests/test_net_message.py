"""Unit tests for the message vocabulary and wire-size model."""

import pytest

from repro.core.protocol import (
    AnswerPush,
    BroadcastInstall,
    CollectReply,
    CollectRequest,
    InstallBand,
    LocationUpdate,
    ProbeReply,
    ProbeRequest,
    RevokeBand,
    ViolationReport,
    BAND_ANSWER,
)
from repro.errors import ProtocolError
from repro.net.message import (
    BROADCAST_ID,
    HEADER_BYTES,
    SERVER_ID,
    Message,
    MessageKind,
    payload_size,
)


class TestPayloadSize:
    def test_none_is_free(self):
        assert payload_size(None) == 0

    def test_float_costs_eight(self):
        assert payload_size(1.5) == 8

    def test_int_costs_four(self):
        assert payload_size(7) == 4

    def test_bool_costs_four(self):
        assert payload_size(True) == 4

    def test_string_costs_utf8_length(self):
        assert payload_size("abc") == 3

    def test_tuple_sums_elements(self):
        assert payload_size((1.0, 2.0, 3)) == 20

    def test_dict_sums_keys_and_values(self):
        assert payload_size({1: 2.0}) == 12

    def test_object_with_wire_size(self):
        assert payload_size(LocationUpdate(1, 2)) == 16

    def test_unsizable_object_raises(self):
        with pytest.raises(TypeError):
            payload_size(object())


class TestMessage:
    def test_size_includes_header(self):
        msg = Message(MessageKind.LOCATION_UPDATE, 3, SERVER_ID, LocationUpdate(1, 2))
        assert msg.size == HEADER_BYTES + 16

    def test_direction_uplink(self):
        msg = Message(MessageKind.VIOLATION, 3, SERVER_ID)
        assert msg.direction() == "uplink"

    def test_direction_downlink(self):
        msg = Message(MessageKind.PROBE, SERVER_ID, 3)
        assert msg.direction() == "downlink"

    def test_direction_broadcast(self):
        msg = Message(MessageKind.COLLECT, SERVER_ID, BROADCAST_ID)
        assert msg.direction() == "broadcast"

    def test_endpoints(self):
        msg = Message(MessageKind.PROBE, SERVER_ID, 3)
        assert msg.endpoints() == (SERVER_ID, 3)


class TestProtocolPayloads:
    def test_probe_request_is_empty(self):
        assert ProbeRequest().wire_size() == 0

    def test_probe_reply_size(self):
        assert ProbeReply(1, 2).wire_size() == 16

    def test_install_band_size(self):
        assert InstallBand(1, BAND_ANSWER, 0, 0, 10).wire_size() == 32

    def test_install_band_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError):
            InstallBand(1, 99, 0, 0, 10)

    def test_install_band_rejects_negative_radius(self):
        with pytest.raises(ProtocolError):
            InstallBand(1, BAND_ANSWER, 0, 0, -1)

    def test_revoke_size(self):
        assert RevokeBand(1).wire_size() == 4

    def test_violation_size(self):
        assert ViolationReport(1, 2, 3).wire_size() == 20

    def test_answer_push_scales_with_k(self):
        assert AnswerPush(1, (1, 2, 3)).wire_size() == 4 + 12

    def test_collect_request_size_and_validation(self):
        assert CollectRequest(1, 0, 0, 100).wire_size() == 28
        with pytest.raises(ProtocolError):
            CollectRequest(1, 0, 0, -5)

    def test_collect_reply_size(self):
        assert CollectReply(1, 2, 3).wire_size() == 20

    def test_broadcast_install_scales_with_answer(self):
        b = BroadcastInstall(1, 0, 0, 100, 10, (1, 2))
        assert b.wire_size() == 4 + 32 + 8

    def test_broadcast_install_rejects_s_above_threshold(self):
        with pytest.raises(ProtocolError):
            BroadcastInstall(1, 0, 0, 10, 20, (1,))

    def test_broadcast_install_allows_infinite_threshold(self):
        b = BroadcastInstall(1, 0, 0, float("inf"), 10, (1,))
        assert b.threshold == float("inf")
