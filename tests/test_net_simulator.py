"""Unit tests for the synchronous round engine."""

import pytest

from repro.errors import NetworkError
from repro.mobility import Fleet, StationaryMover
from repro.net.message import MessageKind, SERVER_ID
from repro.net.node import MobileNode, ServerNodeBase
from repro.net.simulator import (
    ONE_TICK_LATENCY,
    ZERO_LATENCY,
    RoundSimulator,
)


def _static_fleet(universe, n=3):
    movers = [StationaryMover(universe, 10.0 * (i + 1), 10.0) for i in range(n)]
    return Fleet(movers)


class EchoServer(ServerNodeBase):
    """Replies to every LOCATION_UPDATE with a PROBE (for hop tests)."""

    def __init__(self):
        super().__init__()
        self.received = []
        self.subround_calls = 0

    def on_message(self, msg):
        self.received.append(msg)
        if msg.kind == MessageKind.LOCATION_UPDATE:
            self.send(msg.src, MessageKind.PROBE, None)

    def on_subround(self, tick):
        self.subround_calls += 1


class ChattyMobile(MobileNode):
    """Sends one update at tick start; records probes it gets back."""

    def __init__(self, oid, fleet):
        super().__init__(oid, fleet)
        self.probes = 0

    def on_tick_start(self, tick):
        self.send_server(MessageKind.LOCATION_UPDATE, None)

    def on_message(self, msg):
        assert msg.kind == MessageKind.PROBE
        self.probes += 1


class TestZeroLatency:
    def test_round_trip_within_tick(self, universe):
        fleet = _static_fleet(universe)
        server = EchoServer()
        mobiles = [ChattyMobile(i, fleet) for i in range(fleet.n)]
        sim = RoundSimulator(fleet, server, mobiles, latency=ZERO_LATENCY)
        sim.step()
        assert len(server.received) == 3
        assert all(m.probes == 1 for m in mobiles)

    def test_subround_called_at_least_once_per_tick(self, universe):
        fleet = _static_fleet(universe)
        server = EchoServer()
        sim = RoundSimulator(fleet, server, [], latency=ZERO_LATENCY)
        sim.run(4)
        assert server.subround_calls >= 4

    def test_non_quiescent_protocol_raises(self, universe):
        class PingPongServer(ServerNodeBase):
            def on_message(self, msg):
                self.send(msg.src, MessageKind.PROBE, None)

        class PingPongMobile(MobileNode):
            def on_tick_start(self, tick):
                self.send_server(MessageKind.LOCATION_UPDATE, None)

            def on_message(self, msg):
                self.send_server(MessageKind.LOCATION_UPDATE, None)

        fleet = _static_fleet(universe, 1)
        sim = RoundSimulator(
            fleet, PingPongServer(), [PingPongMobile(0, fleet)]
        )
        with pytest.raises(NetworkError):
            sim.step()


class TestOneTickLatency:
    def test_messages_arrive_next_tick(self, universe):
        fleet = _static_fleet(universe)
        server = EchoServer()
        mobiles = [ChattyMobile(i, fleet) for i in range(fleet.n)]
        sim = RoundSimulator(fleet, server, mobiles, latency=ONE_TICK_LATENCY)
        sim.step()
        assert len(server.received) == 0  # still in flight
        sim.step()
        assert len(server.received) == 3  # tick-1 updates land at tick 2
        assert all(m.probes == 0 for m in mobiles)  # replies still in flight
        sim.step()
        assert all(m.probes == 1 for m in mobiles)


class TestConstruction:
    def test_unknown_latency_raises(self, universe):
        fleet = _static_fleet(universe)
        with pytest.raises(NetworkError):
            RoundSimulator(fleet, EchoServer(), [], latency="warp")

    def test_duplicate_node_ids_raise(self, universe):
        fleet = _static_fleet(universe)
        a = ChattyMobile(0, fleet)
        b = MobileNode(0, fleet)
        from repro.net.channel import Channel

        ch = Channel()
        a.attach(ch)
        with pytest.raises(NetworkError):
            RoundSimulator(fleet, EchoServer(), [a, b], channel=ch)

    def test_negative_run_raises(self, universe):
        fleet = _static_fleet(universe)
        sim = RoundSimulator(fleet, EchoServer(), [])
        with pytest.raises(NetworkError):
            sim.run(-1)

    def test_server_seconds_accumulate(self, universe):
        fleet = _static_fleet(universe)
        server = EchoServer()
        mobiles = [ChattyMobile(i, fleet) for i in range(fleet.n)]
        sim = RoundSimulator(fleet, server, mobiles)
        sim.run(3)
        assert sim.server_seconds > 0

    def test_on_tick_callback(self, universe):
        fleet = _static_fleet(universe)
        sim = RoundSimulator(fleet, EchoServer(), [])
        seen = []
        sim.run(5, on_tick=lambda s: seen.append(s.tick))
        assert seen == [1, 2, 3, 4, 5]


class CountingServer(ServerNodeBase):
    """Counts receptions without replying."""

    def __init__(self):
        super().__init__()
        self.received = 0

    def on_message(self, msg):
        self.received += 1


class CountingMobile(MobileNode):
    def __init__(self, oid, fleet):
        super().__init__(oid, fleet)
        self.received = 0

    def on_message(self, msg):
        self.received += 1


class BroadcastingMobile(CountingMobile):
    """Broadcasts one COLLECT at tick 1 (mobile-originated broadcast)."""

    def on_tick_start(self, tick):
        if tick == 1:
            from repro.net.message import BROADCAST_ID

            self.send(BROADCAST_ID, MessageKind.COLLECT, None)


class TestBroadcastDelivery:
    """Pins the broadcast fan-out semantic shared by ``Channel.collect``
    accounting and ``RoundSimulator._deliver``: every registered node
    except the sender — the server included when a mobile broadcasts."""

    def test_server_broadcast_reaches_every_mobile(self, universe):
        fleet = _static_fleet(universe, n=4)

        class OneShotBroadcastServer(CountingServer):
            def on_tick_start(self, tick):
                if tick == 1:
                    self.broadcast(MessageKind.COLLECT, None)

        server = OneShotBroadcastServer()
        mobiles = [CountingMobile(i, fleet) for i in range(fleet.n)]
        sim = RoundSimulator(fleet, server, mobiles)
        sim.step()
        assert [m.received for m in mobiles] == [1, 1, 1, 1]
        assert server.received == 0  # sender excluded
        # accounting matches the actual fan-out exactly
        assert sim.channel.stats.broadcast_receptions == 4

    def test_mobile_broadcast_reaches_all_but_sender(self, universe):
        fleet = _static_fleet(universe, n=3)
        server = CountingServer()
        mobiles = [BroadcastingMobile(0, fleet)] + [
            CountingMobile(i, fleet) for i in (1, 2)
        ]
        sim = RoundSimulator(fleet, server, mobiles)
        sim.step()
        # server + mobiles 1 and 2 hear it; the sender does not
        assert server.received == 1
        assert [m.received for m in mobiles] == [0, 1, 1]
        # recorded receivers == registered nodes minus the sender
        assert sim.channel.stats.broadcast_receptions == len(
            sim.channel.node_ids
        ) - 1 == 3
