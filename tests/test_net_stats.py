"""Unit tests for communication accounting."""

from repro.net.message import BROADCAST_ID, SERVER_ID, Message, MessageKind
from repro.net.stats import CommStats


def _up(kind=MessageKind.LOCATION_UPDATE, size_payload=None):
    return Message(kind, 1, SERVER_ID, size_payload)


def _down(kind=MessageKind.PROBE):
    return Message(kind, SERVER_ID, 1)


def _bcast(kind=MessageKind.COLLECT):
    return Message(kind, SERVER_ID, BROADCAST_ID)


class TestRecording:
    def test_counts_by_direction(self):
        st = CommStats()
        st.record_send(_up())
        st.record_send(_up())
        st.record_send(_down())
        st.record_send(_bcast())
        assert st.uplink_messages == 2
        assert st.downlink_messages == 1
        assert st.broadcast_messages == 1
        assert st.total_messages == 4

    def test_bytes_accumulate(self):
        st = CommStats()
        m = _up(size_payload=(1.0, 2.0))
        st.record_send(m)
        assert st.total_bytes == m.size

    def test_per_kind_counts(self):
        st = CommStats()
        st.record_send(_up(MessageKind.VIOLATION))
        st.record_send(_up(MessageKind.VIOLATION))
        assert st.messages_of(MessageKind.VIOLATION) == 2
        assert st.messages_of(MessageKind.PROBE) == 0

    def test_broadcast_counts_once_but_receptions_fan_out(self):
        st = CommStats()
        b = _bcast()
        st.record_send(b)
        st.record_delivery(b, receivers=50)
        assert st.total_messages == 1
        assert st.broadcast_receptions == 50
        assert st.delivered == 50

    def test_per_kind_table_skips_zero_rows(self):
        st = CommStats()
        st.record_send(_up())
        table = st.per_kind_table()
        assert set(table) == {"location_update"}
        assert table["location_update"]["messages"] == 1


class TestCombination:
    def test_merge(self):
        a, b = CommStats(), CommStats()
        a.record_send(_up())
        b.record_send(_down())
        a.merge(b)
        assert a.total_messages == 2

    def test_snapshot_is_independent(self):
        st = CommStats()
        st.record_send(_up())
        snap = st.snapshot()
        st.record_send(_up())
        assert snap.total_messages == 1
        assert st.total_messages == 2

    def test_delta_since(self):
        st = CommStats()
        st.record_send(_up())
        mark = st.snapshot()
        st.record_send(_down())
        st.record_send(_bcast())
        delta = st.delta_since(mark)
        assert delta.total_messages == 2
        assert delta.uplink_messages == 0
        assert delta.downlink_messages == 1
        assert delta.broadcast_messages == 1

    def test_conservation_sent_equals_delivered_point_to_point(self):
        st = CommStats()
        for _ in range(5):
            m = _up()
            st.record_send(m)
            st.record_delivery(m)
        assert st.delivered == st.total_messages
