"""Observability layer: trace events, metrics, manifests, and the
protocol-scope bit-identity contract (scalar vs fast, with and without
faults)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments import RunConfig, build_system, run_once
from repro.net.faults import FaultPlan
from repro.obs import (
    NULL_TELEMETRY,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    RingSink,
    TraceEvent,
    Tracer,
    Telemetry,
    active_telemetry,
    protocol_events,
    read_jsonl,
    recording,
    use_telemetry,
    write_manifest,
)
from repro.obs.summarize import phase_table, summarize_text
from repro.workloads import WorkloadSpec, build_workload

SPEC = WorkloadSpec(
    n_objects=200, n_queries=4, k=4, ticks=20, warmup_ticks=0, seed=42
)


def _traced_run(algorithm, fast, faults=None, ticks=20):
    ring = RingSink()
    tel = Telemetry(tracer=Tracer(ring))
    fleet, queries = build_workload(SPEC, fast=fast)
    cfg = RunConfig(algorithm, fast=fast, faults=faults)
    sim = build_system(cfg, fleet, queries, telemetry=tel)
    sim.run(ticks)
    answers = {q.qid: tuple(sim.server.answers[q.qid]) for q in queries}
    return ring.events(), answers


def _key(events):
    return [(e.tick, e.kind, e.fields) for e in events]


FAULT_PLANS = {
    "DKNN-P": FaultPlan(
        seed=7,
        drop_uplink=0.08,
        drop_downlink=0.08,
        dup_prob=0.03,
        delay_prob=0.05,
        delay_ticks=2,
        blackouts=((13, 8, 12), (77, 15, 18)),
        crashes=((201, 20),),
    ),
    "DKNN-B": FaultPlan(
        seed=11,
        drop_uplink=0.05,
        drop_downlink=0.05,
        dup_prob=0.02,
        delay_prob=0.04,
        delay_ticks=1,
    ),
    "DKNN-G": FaultPlan(
        seed=11,
        drop_uplink=0.05,
        drop_downlink=0.05,
        dup_prob=0.02,
        delay_prob=0.04,
        delay_ticks=1,
        blackouts=((31, 5, 9),),
    ),
}


class TestProtocolStreamBitIdentity:
    """Scalar and fast runs must emit identical protocol event streams."""

    @pytest.mark.parametrize("algorithm", ["DKNN-P", "DKNN-B", "DKNN-G"])
    def test_identical_without_faults(self, algorithm):
        scalar_events, scalar_answers = _traced_run(algorithm, fast=False)
        fast_events, fast_answers = _traced_run(algorithm, fast=True)
        assert fast_answers == scalar_answers
        assert _key(protocol_events(fast_events)) == _key(
            protocol_events(scalar_events)
        )
        # The runs actually emitted something worth comparing.
        assert protocol_events(scalar_events)

    @pytest.mark.parametrize("algorithm", sorted(FAULT_PLANS))
    def test_identical_under_active_fault_plan(self, algorithm):
        plan = FAULT_PLANS[algorithm]
        scalar_events, scalar_answers = _traced_run(
            algorithm, fast=False, faults=plan
        )
        fast_events, fast_answers = _traced_run(
            algorithm, fast=True, faults=plan
        )
        assert fast_answers == scalar_answers
        assert _key(protocol_events(fast_events)) == _key(
            protocol_events(scalar_events)
        )
        # The plan actually fired: fault.* events are present.
        assert any(
            e.kind.startswith("fault.")
            for e in protocol_events(scalar_events)
        )

    def test_fastpath_perf_events_only_on_fast_runs(self):
        scalar_events, _ = _traced_run("DKNN-B", fast=False)
        fast_events, _ = _traced_run("DKNN-B", fast=True)
        assert not [e for e in scalar_events if e.kind == "fastpath.candidates"]
        assert [e for e in fast_events if e.kind == "fastpath.candidates"]


class TestNullSinkIsFree:
    def test_default_telemetry_is_null(self):
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig("DKNN-B"), fleet, queries)
        assert sim.telemetry is NULL_TELEMETRY
        assert not sim.telemetry.enabled

    def test_disabled_run_never_touches_the_sink(self, monkeypatch):
        def boom(self, event):  # pragma: no cover - must not run
            raise AssertionError("NullSink.emit called on a disabled run")

        monkeypatch.setattr(NullSink, "emit", boom)
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        sim.run(10)  # would raise if any seam emitted an event

    def test_ambient_telemetry_scoping(self):
        assert active_telemetry() is NULL_TELEMETRY
        tel = Telemetry(tracer=Tracer(RingSink()))
        with use_telemetry(tel):
            assert active_telemetry() is tel
            fleet, queries = build_workload(SPEC)
            sim = build_system(RunConfig("DKNN-B"), fleet, queries)
            assert sim.telemetry is tel
        assert active_telemetry() is NULL_TELEMETRY


class TestSinks:
    def test_ring_capacity_and_filter(self):
        ring = RingSink(capacity=3)
        for i in range(5):
            ring.emit(TraceEvent(i, "a" if i % 2 else "b"))
        assert len(ring) == 3
        assert [e.tick for e in ring.events()] == [2, 3, 4]
        assert [e.tick for e in ring.events(kind="a")] == [3]
        ring.clear()
        assert len(ring) == 0

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        assert tracer.enabled
        tracer.emit(3, "server.repair", qid=1, mode="full", answer=[4, 5])
        tracer.emit(4, "fault.drop", kind="PROBE", reason="lossy")
        sink.close()
        events = list(read_jsonl(path))
        assert _key(events) == [
            (3, "server.repair", {"qid": 1, "mode": "full", "answer": [4, 5]}),
            (4, "fault.drop", {"kind": "PROBE", "reason": "lossy"}),
        ]


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        assert reg.value("c") == 3
        reg.counter("c").labels(kind="x").inc(5)
        assert reg.value("c", kind="x") == 5
        reg.gauge("g").set(7)
        reg.gauge("g").dec(2)
        assert reg.value("g") == 5
        h = reg.histogram("h")
        h.observe(1.0)
        h.observe(3.0)
        stats = reg.value("h")
        assert stats["count"] == 2 and stats["mean"] == 2.0
        assert "c" in reg and len(reg) == 3

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ExperimentError):
            reg.gauge("x")

    def test_negative_counter_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ExperimentError):
            reg.counter("c").inc(-1)

    def test_dump_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("msgs", "help text").labels(kind="PROBE").inc(9)
        path = str(tmp_path / "metrics.json")
        reg.dump_json(path)
        doc = json.loads(open(path).read())
        assert "msgs" in doc


class TestRunIntegration:
    def test_run_once_emits_meta_events_and_metrics(self):
        ring = RingSink()
        reg = MetricsRegistry()
        tel = Telemetry(tracer=Tracer(ring), metrics=reg)
        spec = SPEC.but(warmup_ticks=2)
        m = run_once(
            RunConfig("DKNN-P"), spec, accuracy_every=0, telemetry=tel
        )
        starts = ring.events(kind="run.start")
        ends = ring.events(kind="run.end")
        assert len(starts) == 1 and len(ends) == 1
        assert starts[0].fields["seed"] == spec.seed
        assert ends[0].fields["ticks_measured"] == m.ticks_measured
        assert reg.value("ticks_total") == spec.ticks
        assert reg.value("runs_total", algorithm="DKNN-P") == 1
        # per-kind message counters agree with the measurement
        total = sum(
            rate * m.ticks_measured for rate in m.per_kind_msgs.values()
        )
        series = reg.as_dict()["messages_total"]["series"]
        assert sum(row["value"] for row in series) == pytest.approx(total)
        assert all(
            row["labels"]["algorithm"] == "DKNN-P" for row in series
        )

    def test_phase_events_cover_every_tick(self):
        ring = RingSink()
        tel = Telemetry(tracer=Tracer(ring))
        run_once(RunConfig("PER"), SPEC.but(warmup_ticks=2),
                 accuracy_every=0, telemetry=tel)
        phases = ring.events(kind="tick.phase")
        assert len(phases) == SPEC.ticks
        table = phase_table(phases)
        assert set(table) >= {"move", "client", "deliver", "server"}

    def test_manifest_completeness(self, tmp_path):
        with recording() as runs:
            run_once(
                RunConfig("DKNN-G", fast=True, params={"lease_ticks": 4}),
                SPEC.but(warmup_ticks=2),
                accuracy_every=0,
            )
        assert len(runs) == 1
        path = str(tmp_path / "manifest.json")
        doc = write_manifest(path, runs, wall_seconds=1.25)
        on_disk = json.loads(open(path).read())
        assert on_disk == doc
        assert doc["schema"] == 1
        assert doc["environment"]["python"]
        assert doc["wall_seconds"] == 1.25
        run = doc["runs"][0]
        assert run["config"]["algorithm"] == "DKNN-G"
        assert run["config"]["fast"] is True
        assert run["config"]["resolved_params"]["lease_ticks"] == 4
        assert run["spec"]["seed"] == SPEC.seed
        assert run["measurement"]["ticks_measured"] == SPEC.ticks - 2
        assert run["measurement"]["msgs_per_tick"] > 0

    def test_summarize_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tel = Telemetry(tracer=Tracer(sink))
        run_once(
            RunConfig("DKNN-P", fast=True),
            SPEC.but(warmup_ticks=2),
            accuracy_every=0,
            telemetry=tel,
        )
        sink.close()
        events = list(read_jsonl(path))
        text = summarize_text(events, source=path)
        assert "Per-phase tick cost" in text
        assert "DKNN-P" in text
        assert "deliver" in text
