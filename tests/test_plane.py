"""The columnar message plane: batch semantics and bit-identity.

Three layers of pinning:

* :class:`~repro.net.plane.ColumnarBatch` itself — construction
  invariants, the one-queue-slot channel contract, accounting parity
  with the scalar sends the batch replaces, and exact lazy
  materialization;
* whole-system bit-identity — scalar vs columnar fast runs for every
  algorithm, under the sharded tier at S in {1, 4}, and with a
  ShardFaultPlan active (which must veto the plane entirely): per-tick
  answers, every legacy CommStats counter, and the shard ledger agree,
  while ``columnar_by_kind`` proves the plane actually carried traffic
  on the fault-free fast runs;
* trace streams — tracing vetoes the plane, and the resulting Jsonl
  protocol event stream is byte-identical between scalar and fast
  builds.

The radio-FaultPlan identity matrix lives in ``tests/test_fastpath.py``
(FaultyChannel advertises ``supports_columnar = False``, so those runs
exercise the scalar fallback of every fast build).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.protocol import LocationUpdate, ProbeRequest
from repro.errors import NetworkError
from repro.experiments.algorithms import ALGORITHMS, build_system
from repro.experiments.config import RunConfig
from repro.net.channel import Channel
from repro.net.faults import ShardFaultPlan
from repro.server.config import ShardConfig
from repro.net.message import (
    HEADER_BYTES,
    SERVER_ID,
    Message,
    MessageKind,
    payload_size,
)
from repro.net.plane import ColumnarBatch
from repro.obs.telemetry import Telemetry
from repro.obs.trace import PERF_KINDS, PROTOCOL_KINDS, JsonlSink, Tracer
from repro.server.sharding import ShardedServer
from repro.workloads.generator import build_workload
from repro.workloads.spec import WorkloadSpec

LU_NBYTES = payload_size(LocationUpdate(0.0, 0.0))


def _uplink_batch(n=4, kind=MessageKind.LOCATION_UPDATE):
    oids = np.arange(n, dtype=np.int64)
    return ColumnarBatch(
        kind,
        srcs=oids,
        dst=SERVER_ID,
        xs=np.arange(n, dtype=np.float64),
        ys=np.arange(n, dtype=np.float64) * 2.0,
        payload_nbytes=LU_NBYTES,
        payload_ctor=LocationUpdate,
    )


class TestColumnarBatch:
    def test_needs_exactly_one_of_srcs_dsts(self):
        oids = np.arange(3, dtype=np.int64)
        with pytest.raises(NetworkError):
            ColumnarBatch(MessageKind.PROBE)
        with pytest.raises(NetworkError):
            ColumnarBatch(
                MessageKind.PROBE, srcs=oids, dsts=oids, src=0, dst=0
            )

    def test_uplink_needs_scalar_dst(self):
        with pytest.raises(NetworkError):
            ColumnarBatch(
                MessageKind.LOCATION_UPDATE,
                srcs=np.arange(3, dtype=np.int64),
            )

    def test_downlink_needs_scalar_src(self):
        with pytest.raises(NetworkError):
            ColumnarBatch(
                MessageKind.PROBE, dsts=np.arange(3, dtype=np.int64)
            )

    def test_xs_ys_together(self):
        with pytest.raises(NetworkError):
            ColumnarBatch(
                MessageKind.LOCATION_UPDATE,
                srcs=np.arange(3, dtype=np.int64),
                dst=SERVER_ID,
                xs=np.zeros(3),
            )

    def test_views(self):
        batch = _uplink_batch(5)
        assert batch.count == 5
        assert batch.size_each == HEADER_BYTES + LU_NBYTES
        assert batch.total_bytes == 5 * batch.size_each
        assert batch.direction() == "uplink"
        assert batch.endpoints_of(3) == (3, SERVER_ID)
        down = ColumnarBatch(
            MessageKind.PROBE,
            src=SERVER_ID,
            dsts=np.array([7, 9], dtype=np.int64),
            payload_ctor=ProbeRequest,
        )
        assert down.direction() == "downlink"
        assert down.endpoints_of(1) == (SERVER_ID, 9)

    def test_materialize_matches_scalar_messages(self):
        batch = _uplink_batch(4)
        batch.sent_tick = 6
        msgs = batch.materialize()
        assert len(msgs) == 4
        for i, msg in enumerate(msgs):
            assert isinstance(msg, Message)
            assert msg.kind is MessageKind.LOCATION_UPDATE
            assert (msg.src, msg.dst) == (i, SERVER_ID)
            assert msg.sent_tick == 6
            assert (msg.payload.x, msg.payload.y) == (float(i), 2.0 * i)
            assert msg.size == batch.size_each

    def test_materialize_coordinate_free_and_bare(self):
        down = ColumnarBatch(
            MessageKind.PROBE,
            src=SERVER_ID,
            dsts=np.array([3, 1], dtype=np.int64),
            payload_ctor=ProbeRequest,
        )
        msgs = down.materialize()
        assert [m.dst for m in msgs] == [3, 1]
        assert all(isinstance(m.payload, ProbeRequest) for m in msgs)
        bare = ColumnarBatch(
            MessageKind.PROBE,
            src=SERVER_ID,
            dsts=np.array([2], dtype=np.int64),
        )
        assert bare.materialize()[0].payload is None


class TestChannelIntegration:
    def _channel(self, n=8):
        ch = Channel()
        ch.register(SERVER_ID)
        for oid in range(n):
            ch.register(oid)
        return ch

    def test_one_queue_slot_in_run_position(self):
        ch = self._channel()
        before = ch.send(MessageKind.VIOLATION, 0, SERVER_ID)
        batch = ch.send_batch(_uplink_batch(4))
        after = ch.send(MessageKind.QUERY_MOVE, 1, SERVER_ID)
        assert ch.pending() == 6  # 1 + batch.count + 1
        drained = ch.collect()
        assert drained == [before, batch, after]

    def test_accounting_parity_with_scalar_sends(self):
        scalar = self._channel()
        scalar.begin_tick(3)
        for i in range(4):
            scalar.send(
                MessageKind.LOCATION_UPDATE,
                i,
                SERVER_ID,
                LocationUpdate(float(i), 2.0 * i),
            )
        scalar.collect()
        columnar = self._channel()
        columnar.begin_tick(3)
        columnar.send_batch(_uplink_batch(4))
        columnar.collect()
        s, c = scalar.stats, columnar.stats
        assert dict(c.sent_by_kind) == dict(s.sent_by_kind)
        assert dict(c.bytes_by_kind) == dict(s.bytes_by_kind)
        assert dict(c.sent_by_direction) == dict(s.sent_by_direction)
        assert dict(c.bytes_by_direction) == dict(s.bytes_by_direction)
        assert c.delivered == s.delivered
        # The plane's own ledger is the only divergence — diagnostic,
        # deliberately outside the legacy counters.
        assert c.columnar_by_kind[MessageKind.LOCATION_UPDATE] == 4
        assert not s.columnar_by_kind

    def test_one_tick_latency_holds_batch_whole(self):
        ch = self._channel()
        ch.begin_tick(2)
        ch.send_batch(_uplink_batch(3))
        assert ch.collect_sent_before(2) == []
        released = ch.collect_sent_before(3)
        assert len(released) == 1 and released[0].count == 3


def _spec(n=300, ticks=22):
    return WorkloadSpec(
        ticks=ticks, warmup_ticks=0, seed=42, n_objects=n, n_queries=6, k=5
    )


def _run(algorithm, fast, shards=None, shard_faults=None, telemetry=None,
         n=300, ticks=22):
    spec = _spec(n, ticks)
    fleet, queries = build_workload(spec, fast=fast)
    shard = (
        None
        if shards is None and shard_faults is None
        else ShardConfig(shards=shards or 1, faults=shard_faults)
    )
    cfg = RunConfig(
        algorithm,
        record_history=True,
        fast=fast,
        shard=shard,
    )
    sim = build_system(cfg, fleet, queries, telemetry=telemetry)
    answers = []

    def snap(s):
        answers.append(
            {
                qid: tuple(a[-1]) if a else None
                for qid, a in s.server.answer_history.items()
            }
        )

    sim.run(ticks, on_tick=snap)
    stats = sim.channel.stats
    out = {
        "answers": answers,
        "messages": dict(stats.sent_by_kind),
        "bytes": dict(stats.bytes_by_kind),
        "delivered": (stats.delivered, stats.broadcast_receptions),
        "meter": dict(sim.server.meter.units),
        "columnar": dict(stats.columnar_by_kind),
    }
    if isinstance(sim.server, ShardedServer):
        ss = sim.server.shard_stats
        out["shard_ledger"] = (
            list(ss.uplinks),
            list(ss.downlinks),
            ss.migrations,
            ss.forwards,
            ss.area_sends,
        )
    return out


def _assert_identical(fast, scalar):
    assert fast["answers"] == scalar["answers"]
    assert fast["messages"] == scalar["messages"]
    assert fast["bytes"] == scalar["bytes"]
    assert fast["delivered"] == scalar["delivered"]
    assert fast["meter"] == scalar["meter"]
    if "shard_ledger" in scalar:
        assert fast["shard_ledger"] == scalar["shard_ledger"]


#: algorithms whose fast build routes hot-path traffic through the
#: plane (DKNN-B/DKNN-G use broadcast/geocast delivery, which never
#: batches — their identity matrix lives in test_fastpath.py).
COLUMNAR_ALGS = ("DKNN-P", "CPM", "PER", "SEA")


class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", COLUMNAR_ALGS)
    def test_columnar_fast_run_is_identical_and_actually_batches(
        self, algorithm
    ):
        scalar = _run(algorithm, fast=False)
        fast = _run(algorithm, fast=True)
        _assert_identical(fast, scalar)
        assert not scalar["columnar"]
        # the guard against a silently dead plane: the fast run must
        # have moved real traffic through batch columns.
        assert sum(fast["columnar"].values()) > 0

    @pytest.mark.parametrize("algorithm", ("DKNN-P", "CPM"))
    @pytest.mark.parametrize("shards", (1, 4))
    def test_sharded_tier_identity(self, algorithm, shards):
        scalar = _run(algorithm, fast=False, shards=shards)
        fast = _run(algorithm, fast=True, shards=shards)
        _assert_identical(fast, scalar)
        assert sum(fast["columnar"].values()) > 0

    @pytest.mark.parametrize("algorithm", ("DKNN-P", "CPM"))
    def test_shard_fault_plan_vetoes_the_plane(self, algorithm):
        plan = ShardFaultPlan(
            seed=3, link_drop=0.05, crashes=((2, 8, 14),)
        )
        scalar = _run(algorithm, fast=False, shards=4, shard_faults=plan)
        fast = _run(algorithm, fast=True, shards=4, shard_faults=plan)
        _assert_identical(fast, scalar)
        # an active plan adjudicates faults per message: no batches.
        assert not fast["columnar"]

    def test_all_registered_algorithms_have_identity_coverage(self):
        """Every algorithm is pinned either here or in test_fastpath."""
        assert set(COLUMNAR_ALGS) <= set(ALGORITHMS)


class TestTraceStreams:
    @pytest.mark.parametrize("algorithm", COLUMNAR_ALGS)
    def test_traced_runs_go_scalar_with_identical_jsonl(
        self, algorithm, tmp_path
    ):
        """Tracing vetoes the plane and the event streams agree.

        The Jsonl files are compared on everything except ``PERF_KINDS``
        — timing (``tick.phase``) and dispatch (``fastpath.candidates``)
        events are explicitly allowed to differ between the scalar and
        fast builds; every other kind must be byte-for-byte identical.
        """
        streams = {}
        for fast in (False, True):
            path = tmp_path / f"trace_{fast}.jsonl"
            tel = Telemetry(tracer=Tracer(JsonlSink(str(path))))
            out = _run(algorithm, fast=fast, telemetry=tel, ticks=15)
            tel.tracer.close()
            assert not out["columnar"]  # tracing vetoes the plane
            lines = path.read_text().strip().splitlines()
            assert lines
            events = [json.loads(line) for line in lines]
            streams[fast] = [
                e for e in events if e["kind"] not in PERF_KINDS
            ]
        assert streams[True] == streams[False]
        if algorithm == "DKNN-P":
            # The distributed protocol emits server.* events every run;
            # the centralized baselines legitimately emit none, so only
            # DKNN-P pins a non-empty comparison.
            assert any(
                e["kind"] in PROTOCOL_KINDS for e in streams[True]
            )
