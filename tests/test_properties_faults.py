"""Property: the hardened protocol re-converges once faults cease.

Hypothesis draws a workload, a fault seed, and loss/duplication rates;
the plan's ``until_tick`` makes the probabilistic faults stop partway
through the run. From that point the self-healing machinery (acked
installs, lease heartbeats, violation re-reports) must drive every
published answer back to exactness within a bounded settle window —
empirically the last wrong tick is ``until_tick`` itself, but the bound
here allows a few lease/ack periods of slack so the test pins recovery,
not a specific convergence speed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.algorithms import build_system
from repro.experiments.config import RunConfig
from repro.metrics.accuracy import is_valid_knn
from repro.net.faults import FaultPlan
from repro.workloads import WorkloadSpec, build_workload

FAULTY_TICKS = 25
SETTLE_TICKS = 20  # >> lease (6) + ack timeout (2) + violation retry (2)

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "fault_seed": st.integers(min_value=0, max_value=10_000),
        "drop": st.floats(min_value=0.0, max_value=0.5),
        "dup": st.floats(min_value=0.0, max_value=0.2),
        "delay": st.floats(min_value=0.0, max_value=0.2),
    }
)


@given(scenario)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_hardened_dknn_reconverges_after_faults_cease(s):
    total = FAULTY_TICKS + SETTLE_TICKS
    spec = WorkloadSpec(
        n_objects=60,
        n_queries=2,
        k=4,
        ticks=total,
        warmup_ticks=1,
        seed=s["seed"],
        universe_size=3_000.0,
    )
    fleet, queries = build_workload(spec)
    plan = FaultPlan(
        seed=s["fault_seed"],
        drop_uplink=s["drop"],
        drop_downlink=s["drop"],
        dup_prob=s["dup"],
        delay_prob=s["delay"],
        until_tick=FAULTY_TICKS,
    )
    cfg = RunConfig(
        "DKNN-P",
        faults=plan,
        params=dict(
            fault_tolerant=True,
            ack_timeout=2,
            lease_ticks=6,
            violation_retry=2,
        ),
    )
    sim = build_system(cfg, fleet, queries)
    wrong_after_settle = []

    def check(sim_):
        if sim_.tick <= FAULTY_TICKS + SETTLE_TICKS // 2:
            return
        positions = fleet.positions
        for q in queries:
            qx, qy = positions[q.focal_oid]
            answer = sim_.server.answers[q.qid]
            if not is_valid_knn(
                positions, qx, qy, q.k, answer, {q.focal_oid}
            ):
                wrong_after_settle.append((sim_.tick, q.qid))

    sim.run(total, on_tick=check)
    assert not wrong_after_settle, (
        f"answers still wrong after settle window: {wrong_after_settle}; "
        f"plan={plan!r}"
    )
