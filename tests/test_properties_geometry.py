"""Property-based tests for the geometry kernel."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Annulus,
    AnswerBand,
    Circle,
    OutsiderBand,
    Rect,
    dist,
    dist2,
    translate_toward,
)

coord = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
radius = st.floats(min_value=0, max_value=1e6, allow_nan=False)
step = st.floats(min_value=0, max_value=1e6, allow_nan=False)


@given(coord, coord, coord, coord)
def test_dist_is_symmetric_and_nonnegative(x1, y1, x2, y2):
    d = dist(x1, y1, x2, y2)
    assert d >= 0
    assert d == dist(x2, y2, x1, y1)


@given(coord, coord, coord, coord, coord, coord)
def test_triangle_inequality(x1, y1, x2, y2, x3, y3):
    d12 = dist(x1, y1, x2, y2)
    d23 = dist(x2, y2, x3, y3)
    d13 = dist(x1, y1, x3, y3)
    assert d13 <= d12 + d23 + 1e-6 * (1 + d13)


@given(coord, coord, coord, coord)
def test_dist2_consistent_with_dist(x1, y1, x2, y2):
    assert math.isclose(
        dist2(x1, y1, x2, y2), dist(x1, y1, x2, y2) ** 2,
        rel_tol=1e-9, abs_tol=1e-9,
    )


@given(coord, coord, coord, coord, step)
def test_translate_toward_never_overshoots(x, y, tx, ty, s):
    nx, ny = translate_toward(x, y, tx, ty, s)
    moved = dist(x, y, nx, ny)
    assert moved <= s + 1e-6 * (1 + s)
    # And never moves farther from the target than it started.
    assert dist(nx, ny, tx, ty) <= dist(x, y, tx, ty) + 1e-9


rect_strategy = st.tuples(coord, coord, radius, radius).map(
    lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3])
)


@given(rect_strategy, coord, coord)
def test_rect_min_le_max_dist(rect, x, y):
    assert rect.min_dist(x, y) <= rect.max_dist(x, y) + 1e-9


@given(rect_strategy, coord, coord)
def test_rect_clamp_point_achieves_min_dist(rect, x, y):
    cx, cy = rect.clamp_point(x, y)
    assert rect.contains_point(cx, cy)
    assert math.isclose(
        dist(x, y, cx, cy), rect.min_dist(x, y), rel_tol=1e-9, abs_tol=1e-9
    )


@given(rect_strategy, rect_strategy)
def test_rect_intersection_symmetric(a, b):
    assert a.intersects(b) == b.intersects(a)


@given(rect_strategy, rect_strategy)
def test_rect_union_contains_both(a, b):
    u = a.union(b)
    assert u.contains_rect(a) and u.contains_rect(b)


@given(coord, coord, radius, coord, coord)
def test_circle_contains_iff_distance_within(cx, cy, r, x, y):
    c = Circle(cx, cy, r)
    d = dist(cx, cy, x, y)
    if d < r * (1 - 1e-12) - 1e-12:
        assert c.contains_point(x, y)
    if d > r * (1 + 1e-12) + 1e-12:
        assert not c.contains_point(x, y)


@given(coord, coord, radius, rect_strategy)
def test_circle_rect_intersection_consistent_with_min_dist(cx, cy, r, rect):
    c = Circle(cx, cy, r)
    assert c.intersects_rect(rect) == (rect.min_dist(cx, cy) <= r)


@given(coord, coord, radius, radius, coord, coord)
def test_annulus_partition(cx, cy, inner, extra, x, y):
    a = Annulus(cx, cy, inner, inner + extra)
    d = dist(cx, cy, x, y)
    inside = a.contains_point(x, y)
    if inside:
        assert inner * (1 - 1e-9) - 1e-9 <= d <= (inner + extra) * (1 + 1e-9) + 1e-9


@given(coord, coord, radius, coord, coord)
def test_answer_outsider_bands_cover_plane(ax, ay, r, x, y):
    """Every point satisfies at least one of the two band predicates."""
    a = AnswerBand(ax, ay, r)
    o = OutsiderBand(ax, ay, r)
    assert a.contains(x, y) or o.contains(x, y)
