"""Property-based tests: grid search equals brute force, always."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.index import (
    UniformGrid,
    brute_knn_ids,
    brute_range,
    knn_search,
    range_search,
)

UNIVERSE = Rect(0, 0, 1000, 1000)

point = st.tuples(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
)
points = st.lists(point, min_size=0, max_size=60)
query = st.tuples(
    st.floats(min_value=-200, max_value=1200, allow_nan=False),
    st.floats(min_value=-200, max_value=1200, allow_nan=False),
)
cells = st.integers(min_value=1, max_value=25)
k_value = st.integers(min_value=1, max_value=12)


def _grid(ps, n_cells):
    grid = UniformGrid(UNIVERSE, n_cells)
    for oid, (x, y) in enumerate(ps):
        grid.insert(oid, x, y)
    return grid


@given(points, query, k_value, cells)
@settings(max_examples=150, deadline=None)
def test_knn_matches_brute_force(ps, q, k, n_cells):
    grid = _grid(ps, n_cells)
    got = [oid for _, oid in knn_search(grid, q[0], q[1], k)]
    want = brute_knn_ids(ps, q[0], q[1], k)
    assert got == want


@given(points, query, k_value, cells, st.sets(st.integers(0, 59)))
@settings(max_examples=80, deadline=None)
def test_knn_with_exclusion_matches_brute_force(ps, q, k, n_cells, exclude):
    grid = _grid(ps, n_cells)
    got = [oid for _, oid in knn_search(grid, q[0], q[1], k, exclude=exclude)]
    want = brute_knn_ids(ps, q[0], q[1], k, exclude=exclude)
    assert got == want


@given(
    points,
    query,
    st.floats(min_value=0, max_value=1500, allow_nan=False),
    cells,
)
@settings(max_examples=150, deadline=None)
def test_range_matches_brute_force(ps, q, r, n_cells):
    grid = _grid(ps, n_cells)
    got = [oid for _, oid in range_search(grid, q[0], q[1], r)]
    want = [oid for _, oid in brute_range(ps, q[0], q[1], r)]
    assert got == want


@given(points, cells, st.lists(point, min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_knn_correct_after_updates(ps, n_cells, moves):
    """Move objects around, then re-verify search correctness."""
    if not ps:
        return
    grid = _grid(ps, n_cells)
    positions = list(ps)
    for i, (nx, ny) in enumerate(moves):
        oid = i % len(positions)
        grid.update(oid, nx, ny)
        positions[oid] = (nx, ny)
    got = [oid for _, oid in knn_search(grid, 500, 500, 5)]
    assert got == brute_knn_ids(positions, 500, 500, 5)


@given(points, cells)
@settings(max_examples=60, deadline=None)
def test_grid_length_tracks_population(ps, n_cells):
    grid = _grid(ps, n_cells)
    assert len(grid) == len(ps)
    for oid in range(len(ps)):
        grid.remove(oid)
    assert len(grid) == 0
    assert list(grid.nonempty_cells()) == []
