"""Property-based tests of mobility invariants (DESIGN.md §3 key
invariant 4 depends on these: bounded speed and containment)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, dist
from repro.mobility import (
    Fleet,
    GaussianClusterModel,
    RandomDirectionModel,
    RandomWaypointModel,
    RoadNetworkModel,
    record_trace,
)

UNIVERSE = Rect(0, 0, 5_000, 5_000)

model_choice = st.sampled_from(["waypoint", "direction", "cluster", "road"])


def _model(name, vmax):
    if name == "waypoint":
        return RandomWaypointModel(UNIVERSE, vmax * 0.2, vmax, pause_max=2)
    if name == "direction":
        return RandomDirectionModel(UNIVERSE, vmax * 0.2, vmax)
    if name == "cluster":
        return GaussianClusterModel(
            UNIVERSE, n_hotspots=3, sigma=300, speed_min=vmax * 0.2,
            speed_max=vmax,
        )
    return RoadNetworkModel(
        UNIVERSE, rows=5, cols=5, speed_min=vmax * 0.2, speed_max=vmax
    )


@given(
    model_choice,
    st.floats(min_value=1.0, max_value=500.0),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=40, deadline=None)
def test_fleet_containment_and_speed_bound(name, vmax, n, seed):
    model = _model(name, vmax)
    fleet = Fleet.from_model(model, n, seed=seed)
    for _ in range(25):
        before = list(fleet.positions)
        fleet.advance()  # Fleet.advance re-checks both invariants itself
        for (x1, y1), (x2, y2) in zip(before, fleet.positions):
            assert UNIVERSE.contains_point(x2, y2)
            assert dist(x1, y1, x2, y2) <= vmax + 1e-6


@given(
    model_choice,
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=20, deadline=None)
def test_trace_roundtrip_replays_identically(name, n, seed):
    import os
    import tempfile

    model = _model(name, 60.0)
    fleet = Fleet.from_model(model, n, seed=seed)
    trace = record_trace(fleet, 12)
    fd, path = tempfile.mkstemp(suffix=".csv")
    os.close(fd)
    trace.save_csv(path)
    from repro.mobility import Trace

    try:
        loaded = Trace.load_csv(path)
    finally:
        os.unlink(path)
    replay = loaded.replay()
    for tick in range(trace.ticks):
        assert list(replay.positions) == trace.frames[tick]
        replay.advance()


@given(st.integers(min_value=0, max_value=9999))
@settings(max_examples=20, deadline=None)
def test_same_seed_same_world(seed):
    a = Fleet.from_model(RandomWaypointModel(UNIVERSE, 10, 40), 8, seed=seed)
    b = Fleet.from_model(RandomWaypointModel(UNIVERSE, 10, 40), 8, seed=seed)
    for _ in range(10):
        a.advance()
        b.advance()
    assert a.positions == b.positions
