"""Property-based end-to-end tests of the protocols.

Hypothesis generates small random worlds (population, k, speeds, seeds)
and the full simulation must publish valid kNN answers at every tick
for both distributed variants. These tests are the strongest guard the
repository has: they explore the corner where the k/k+1 gap collapses,
populations hover around k, and queries outrun objects.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import plan_installation
from repro.errors import ProtocolError
from repro.experiments.algorithms import build_system
from repro.experiments.config import RunConfig
from repro.workloads import WorkloadSpec, build_workload
from tests.helpers import ExactnessChecker

import math

world = st.fixed_dictionaries(
    {
        "n_objects": st.integers(min_value=2, max_value=60),
        "n_queries": st.integers(min_value=1, max_value=3),
        "k": st.integers(min_value=1, max_value=8),
        "speed_max": st.floats(min_value=1.0, max_value=300.0),
        "query_speed": st.floats(min_value=0.0, max_value=300.0),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


def _spec(w) -> WorkloadSpec:
    return WorkloadSpec(
        n_objects=w["n_objects"],
        n_queries=w["n_queries"],
        k=w["k"],
        speed_min=w["speed_max"] * 0.3,
        speed_max=w["speed_max"],
        query_speed=w["query_speed"],
        universe_size=3_000.0,
        ticks=16,
        warmup_ticks=1,
        seed=w["seed"],
    )


@given(world)
@settings(max_examples=25, deadline=None)
def test_dknn_p_exact_on_random_worlds(w):
    spec = _spec(w)
    fleet, queries = build_workload(spec)
    cfg = RunConfig("DKNN-P", params={"theta": 60.0, "s_cap": 30.0})
    sim = build_system(cfg, fleet, queries)
    checker = ExactnessChecker(fleet, queries)
    sim.run(15, on_tick=checker)
    checker.assert_clean()


@given(world)
@settings(max_examples=25, deadline=None)
def test_dknn_b_exact_on_random_worlds(w):
    spec = _spec(w)
    fleet, queries = build_workload(spec)
    sim = build_system(RunConfig("DKNN-B"), fleet, queries)
    checker = ExactnessChecker(fleet, queries)
    sim.run(15, on_tick=checker)
    checker.assert_clean()


@given(world)
@settings(max_examples=25, deadline=None)
def test_dknn_g_exact_on_random_worlds(w):
    spec = _spec(w)
    fleet, queries = build_workload(spec)
    cfg = RunConfig("DKNN-G", params={"lease_ticks": 4})
    sim = build_system(cfg, fleet, queries)
    checker = ExactnessChecker(fleet, queries)
    sim.run(15, on_tick=checker)
    checker.assert_clean()


@given(world)
@settings(max_examples=10, deadline=None)
def test_centralized_exact_on_random_worlds(w):
    spec = _spec(w)
    for name in ("SEA", "CPM"):
        fleet, queries = build_workload(spec)
        sim = build_system(RunConfig(name), fleet, queries)
        checker = ExactnessChecker(fleet, queries)
        sim.run(15, on_tick=checker)
        checker.assert_clean()


# -- installation-planning properties -----------------------------------------

distances = st.lists(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    min_size=1,
    max_size=30,
)


@given(distances, st.integers(1, 10), st.floats(0, 1e3, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_plan_installation_invariants(dists, k, s_cap):
    cands = [(d, i) for i, d in enumerate(sorted(dists))]
    inst = plan_installation((0.0, 0.0), cands, k, s_cap)
    # Answer is the k nearest (prefix of the sorted candidates).
    assert inst.answer == tuple(cands[: min(k, len(cands))])
    assert inst.s_eff <= s_cap + 1e-12
    if math.isinf(inst.threshold):
        assert len(cands) <= k
        assert inst.outsiders == ()
    else:
        d_k = cands[k - 1][0]
        d_k1 = cands[k][0]
        # Bands are installable: answers inside, outsiders outside.
        assert d_k <= inst.answer_band_radius + 1e-9
        assert inst.outsider_band_radius <= d_k1 + 1e-9
        # The threshold separates the bands by 2 * s_eff (float-close).
        assert math.isclose(
            inst.outsider_band_radius - inst.answer_band_radius,
            2 * inst.s_eff,
            rel_tol=1e-9,
            abs_tol=1e-6,
        )
        # Monitor zone covers the outsider boundary.
        assert inst.monitor_radius(10.0) >= inst.outsider_band_radius


@given(st.integers(0, 10))
def test_plan_installation_rejects_bad_k(extra):
    with pytest_raises_protocol():
        plan_installation((0, 0), [(1.0, 0)], 0, 1.0)


def pytest_raises_protocol():
    import pytest

    return pytest.raises(ProtocolError)
