"""Properties of the faulted sharded tier.

* **Failover re-convergence** — Hypothesis draws a workload and a
  crash window; the test first runs a clean copy of the workload to
  learn which shard owns the first query at the crash tick, then
  crashes exactly that shard in a second run. The buddy must take the
  query over (a failover with queries moved), the answers published
  from the stale replica must open a degraded window that closes with
  a recorded recovery latency, and once the shard restarts the
  published answers must return to the exact kNN within a bounded
  settle window — the same ground-truth-replay check the blackout
  handoff test uses.
* **Composed-fault accounting** — a radio ``FaultPlan`` layered on a
  ``ShardFaultPlan`` crash/partition run keeps healthy exactness at
  1.0 (the degraded annotation stays honest when both fault models
  fire at once — enforced per tick by the chaos harness's
  :class:`~repro.net.chaos.HealthyExactnessChecker`, whose bound is
  exactly the radio layer's documented violation-retry blind spot,
  see :class:`repro.metrics.accuracy.AccuracyTracker`), and backbone
  traffic — retries included — lands in the ``server_to_server``
  CommStats bucket exactly once per wire message, never in the radio
  buckets.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.algorithms import build_system
from repro.experiments.config import RunConfig
from repro.index.bruteforce import brute_knn_ids
from repro.net.chaos import default_checkers
from repro.net.faults import FaultPlan, ShardFaultPlan
from repro.net.message import MessageKind
from repro.server.config import ShardConfig
from repro.workloads import WorkloadSpec, build_workload

CRASH_T0 = 20
CRASH_T1 = 32
TOTAL_TICKS = 64
HEARTBEAT_TIMEOUT = 3
LEASE = 8

FT_PARAMS = {
    "fault_tolerant": True,
    "ack_timeout": 2,
    "lease_ticks": LEASE,
    "violation_retry": 2,
}

scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "fault_seed": st.integers(min_value=0, max_value=10_000),
        "n_objects": st.integers(min_value=60, max_value=150),
        "n_queries": st.integers(min_value=2, max_value=3),
    }
)


def _spec(s):
    return WorkloadSpec(
        n_objects=s["n_objects"],
        n_queries=s["n_queries"],
        k=4,
        ticks=TOTAL_TICKS,
        warmup_ticks=2,
        seed=s["seed"],
        universe_size=3_000.0,
    )


def _owner_at_crash_tick(spec):
    """Clean probe run: which shard owns query 0 when the crash hits?

    Ownership is a deterministic function of reported positions, and
    the fault plan does nothing before its first window, so the faulty
    run reaches the same ownership at the last pre-crash tick
    (``CRASH_T0 - 1``; from ``CRASH_T0`` on, the victim's backbone
    sends are dropped, so it cannot hand the query off before the
    watcher's timeout fires).
    """
    fleet, queries = build_workload(spec)
    cfg = RunConfig(
        "DKNN-P", shard=ShardConfig(shards=2), params=dict(FT_PARAMS)
    )
    sim = build_system(cfg, fleet, queries)
    sim.run(CRASH_T0 - 1)
    return sim.server._owner[queries[0].qid]


@given(scenario)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_crashed_owner_fails_over_and_reconverges(s):
    spec = _spec(s)
    victim = _owner_at_crash_tick(spec)

    plan = ShardFaultPlan(
        seed=s["fault_seed"],
        crashes=((victim, CRASH_T0, CRASH_T1),),
        heartbeat_timeout=HEARTBEAT_TIMEOUT,
    )
    fleet, queries = build_workload(spec)
    cfg = RunConfig(
        "DKNN-P",
        record_history=True,
        shard=ShardConfig(shards=2, faults=plan),
        params=dict(FT_PARAMS),
    )
    sim = build_system(cfg, fleet, queries)

    owners_seen = []
    sim.run(spec.ticks, on_tick=lambda x: owners_seen.append(
        dict(x.server._owner)
    ))
    tier = sim.server
    st_ = tier.shard_stats

    # The buddy suspected the dead shard and took its queries over.
    assert st_.failovers >= 1, "crash never detected"
    assert st_.queries_taken_over >= 1, "owned query not taken over"
    # The restart heartbeat handed the coverage back.
    assert st_.restores >= 1, "restarted shard never restored"
    assert not tier._failed

    # Degraded accounting: windows opened at takeover closed with a
    # recorded latency, and none is still open at run end (the settle
    # bound is recovery_settle_ticks=12 << the post-crash tail).
    assert st_.recovery_latencies, "no degraded window accounted"
    assert all(t >= 0 for t in st_.recovery_latencies)
    assert not tier._degraded_overlay, "degraded window still open"

    # Ownership invariant: one owner map, always valid shard ids.
    for snapshot in owners_seen:
        for owner in snapshot.values():
            assert 0 <= owner < tier.router.n_shards

    # Bounded re-convergence: detection + restore + one lease/retry
    # round of slack, then published answers are exact at probe ticks.
    deadline = CRASH_T1 + HEARTBEAT_TIMEOUT + LEASE + 4
    replay = {}
    for q in queries:
        for tick, answer in tier.answer_history[q.qid]:
            replay.setdefault(tick, {})[q.qid] = answer
    fleet2, _ = build_workload(spec)
    exact_since = None
    for tick in range(1, spec.ticks + 1):
        fleet2.advance()
        if tick < deadline or tick % 2:
            continue
        ok = True
        for q in queries:
            qx, qy = fleet2.positions[q.focal_oid]
            truth = brute_knn_ids(
                fleet2.positions, qx, qy, q.k, frozenset((q.focal_oid,))
            )
            if sorted(replay[tick][q.qid]) != sorted(truth):
                ok = False
        if ok and exact_since is None:
            exact_since = tick
    assert exact_since is not None, (
        f"never exact again after restart + settle (deadline {deadline})"
    )


composed = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "radio_seed": st.integers(min_value=0, max_value=10_000),
        "shard_seed": st.integers(min_value=0, max_value=10_000),
        "n_objects": st.integers(min_value=60, max_value=150),
        "n_queries": st.integers(min_value=2, max_value=3),
        "victim": st.integers(min_value=0, max_value=3),
        "cut": st.integers(min_value=0, max_value=2),
        "link_drop": st.floats(min_value=0.0, max_value=0.05),
    }
)


def _composed_cfg(s):
    """A radio FaultPlan layered on a ShardFaultPlan crash+partition."""
    radio = FaultPlan(
        seed=s["radio_seed"],
        drop_uplink=0.02,
        drop_downlink=0.02,
        dup_prob=0.01,
        delay_prob=0.02,
        delay_ticks=1,
    )
    shard = ShardFaultPlan(
        seed=s["shard_seed"],
        link_drop=s["link_drop"],
        crashes=((s["victim"], CRASH_T0, CRASH_T1),),
        partitions=((s["cut"], s["cut"] + 1, CRASH_T1 + 2, CRASH_T1 + 12),),
        heartbeat_timeout=HEARTBEAT_TIMEOUT,
    )
    return RunConfig(
        "DKNN-P",
        faults=radio,
        shard=ShardConfig(shards=2, faults=shard),
        params=dict(FT_PARAMS),
    )


@given(composed)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_composed_faults_stay_honest_and_singly_counted(s):
    spec = _spec(s)
    fleet, queries = build_workload(spec)
    sim = build_system(_composed_cfg(s), fleet, queries)
    tier = sim.server

    # Shadow-count the backbone send path so the CommStats ledger can
    # be checked against a ground-truth call count.
    link = tier.link
    shadow: Counter = Counter()
    original_send = link.send

    def counting_send(kind, src, dst, payload_bytes, payload=None):
        shadow[kind] += 1
        return original_send(kind, src, dst, payload_bytes, payload)

    link.send = counting_send

    # Honesty under composition, checked every tick: an answer the
    # tier does not flag degraded must match brute-force kNN, up to
    # the radio layer's documented violation-retry blind spot (the
    # HealthyExactnessChecker bound — strict per-sample equality is
    # not a theorem under radio drops even unsharded, see
    # AccuracyTracker.healthy_exactness). The other four checkers ride
    # along: ownership, no-lost-query, and replication-lag invariants
    # must also hold with both fault models firing at once.
    checkers = default_checkers()
    violations = []

    def on_tick(x):
        for checker in checkers:
            violations.extend(
                (x.tick, checker.name, fields)
                for fields in checker.check(x, x.tick)
            )

    sim.run(spec.ticks, on_tick=on_tick)
    assert not violations, violations[:5]
    # The schedule actually degraded something (the crash fired).
    assert tier.shard_stats.failovers >= 1
    assert tier.shard_stats.recovery_latencies

    stats = sim.channel.stats
    # Every backbone wire message — handoff retransmits included — is
    # recorded in the server_to_server bucket exactly once ...
    assert stats.s2s_by_kind == shadow
    assert stats.s2s_by_kind == link.sent_by_kind
    assert stats.s2s_bytes_by_kind == link.bytes_by_kind
    assert stats.server_to_server_messages > 0
    # ... and none of it leaks into the radio buckets: those stay
    # keyed by the radio MessageKind vocabulary only, so backbone
    # retries can never double-count as radio traffic or retransmits.
    for bucket in (
        stats.sent_by_kind,
        stats.bytes_by_kind,
        stats.dropped_by_kind,
        stats.duplicated_by_kind,
        stats.delayed_by_kind,
        stats.retransmits_by_kind,
    ):
        assert all(isinstance(kind, MessageKind) for kind in bucket)
    assert stats.total_messages == sum(stats.sent_by_kind.values())
