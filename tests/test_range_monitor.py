"""Tests for continuous range monitoring (the framework extension)."""

import math

import pytest

from repro.core.range_monitor import (
    RangeInstall,
    RangeQuerySpec,
    ZONE_GRAY,
    ZONE_INNER,
    ZONE_OUTER,
    build_range_system,
)
from repro.errors import ProtocolError
from repro.index import brute_range
from repro.workloads import WorkloadSpec, build_workload

_BOUNDARY_EPS = 1e-5


def _range_exact(fleet, rqueries, sim, failures):
    """Tie-tolerant range check: disagreements allowed only for objects
    sitting within float noise of the boundary."""
    for rq in rqueries:
        qx, qy = fleet.positions[rq.focal_oid]
        truth = {
            o
            for _, o in brute_range(
                fleet.positions, qx, qy, rq.radius, {rq.focal_oid}
            )
        }
        got = set(sim.server.answers[rq.qid])
        for oid in truth ^ got:
            ox, oy = fleet.positions[oid]
            d = math.hypot(ox - qx, oy - qy)
            if abs(d - rq.radius) > _BOUNDARY_EPS * (1 + rq.radius):
                failures.append((sim.tick, rq.qid, oid, d, rq.radius))


def _run(spec, radius=1500.0, s_margin=50.0, ticks=60):
    fleet, kqueries = build_workload(spec)
    rqueries = [
        RangeQuerySpec(qid=i, focal_oid=q.focal_oid, radius=radius)
        for i, q in enumerate(kqueries)
    ]
    sim = build_range_system(fleet, rqueries, s_margin=s_margin)
    failures = []
    sim.run(ticks, on_tick=lambda s: _range_exact(fleet, rqueries, s, failures))
    assert not failures, failures[:3]
    return sim


BASE = WorkloadSpec(
    n_objects=200, n_queries=2, k=1, seed=41, ticks=10, warmup_ticks=1
)


class TestSpecs:
    def test_invalid_radius_raises(self):
        with pytest.raises(ProtocolError):
            RangeQuerySpec(qid=1, focal_oid=0, radius=0.0)

    def test_invalid_margin_raises(self):
        with pytest.raises(ProtocolError):
            RangeInstall(1, 0, 0, radius=100.0, s=100.0)

    def test_focal_outside_fleet_raises(self):
        fleet, _ = build_workload(BASE)
        with pytest.raises(ProtocolError):
            build_range_system(
                fleet, [RangeQuerySpec(qid=0, focal_oid=9999, radius=10.0)]
            )


class TestZoneClassification:
    INSTALL = RangeInstall(1, 0.0, 0.0, radius=100.0, s=10.0)

    def test_inner(self):
        assert self.INSTALL.zone_of(50, 0) == ZONE_INNER
        assert self.INSTALL.zone_of(90, 0) == ZONE_INNER

    def test_gray(self):
        assert self.INSTALL.zone_of(95, 0) == ZONE_GRAY
        assert self.INSTALL.zone_of(105, 0) == ZONE_GRAY

    def test_outer(self):
        assert self.INSTALL.zone_of(110, 0) == ZONE_OUTER
        assert self.INSTALL.zone_of(500, 500) == ZONE_OUTER


class TestExactness:
    def test_default_workload(self):
        _run(BASE)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_across_seeds(self, seed):
        _run(BASE.but(seed=seed))

    def test_static_queries(self):
        _run(BASE.but(query_speed=0.0, seed=43))

    def test_fast_queries(self):
        _run(BASE.but(query_speed=180.0, seed=44))

    def test_small_radius_empty_answers_possible(self):
        sim = _run(BASE.but(seed=45), radius=200.0)
        # With a 200-unit radius over this density most answers are empty
        # at some point; the run stays exact regardless.

    def test_zero_margin(self):
        _run(BASE.but(seed=46), s_margin=0.0)

    def test_large_radius_mass_membership(self):
        _run(BASE.but(n_objects=80, seed=47), radius=6000.0)


class TestCost:
    def test_cheaper_than_centralized_streaming(self):
        sim = _run(BASE.but(seed=48), ticks=50)
        population = BASE.population
        assert sim.channel.stats.total_messages < population * 50 / 2

    def test_gray_streaming_scales_with_margin(self):
        thin = _run(BASE.but(seed=49), s_margin=10.0, ticks=40)
        thick = _run(BASE.but(seed=49), s_margin=200.0, ticks=40)
        from repro.net.message import MessageKind

        assert thin.channel.stats.messages_of(
            MessageKind.VIOLATION
        ) < thick.channel.stats.messages_of(MessageKind.VIOLATION)
