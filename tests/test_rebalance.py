"""Elastic shard rebalancing: invariants, bit-identity, backpressure.

Pinned contracts of the rebalancer (DESIGN.md section 14):

* **Partition invariant** — with migrations firing, the fine-cell
  ownership array is a partition of the universe every tick: every
  cell has exactly one owner and that owner is a live shard id.
* **Correctness preserved** — a rebalancing tier publishes the same
  per-tick answers as the unsharded reference server; migrating a
  cell moves homes and query ownership, never answer content.
* **Bit-identity when disabled** — ``rebalance=None`` (the default)
  leaves the static tier untouched: answers, CommStats and the
  protocol trace stream are identical to a build of current main
  without the feature.
* **It actually balances** — under a drifting hotspot the windowed
  max/mean uplink imbalance drops versus static boundaries (the E18
  acceptance criterion, smoke-sized here).
* **Chaos composition** — migrations racing crashes, partitions and
  a full-tier restart produce zero invariant violations.
* **Backpressure honesty** — deferred/shed uplinks surface in
  ``shard.defer`` / ``shard.shed`` trace events and flag the affected
  answers degraded; ``healthy_exactness`` stays 1.0.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    AdmissionPolicy,
    RebalancePolicy,
    RunConfig,
    ShardConfig,
    ShardFaultPlan,
    WorkloadSpec,
    build_system,
    build_workload,
    run_chaos,
    run_once,
)
from repro.errors import ConfigError
from repro.obs import RingSink, Telemetry, Tracer, protocol_events

#: Hotspot-drift workload small enough for CI but hot enough that the
#: rebalancer has something to chase (three Zipf-weighted hotspots
#: orbiting through the grid).
DRIFT = WorkloadSpec(
    n_objects=600, n_queries=4, k=4, ticks=60, warmup_ticks=5, seed=11,
    mobility="hotspot_drift",
    mobility_options={"n_hotspots": 3, "zipf_s": 1.0, "drift_period": 50},
)

POLICY = RebalancePolicy(
    check_interval=5, trigger=1.2, max_moves_per_cycle=6,
    cells_per_shard=4, min_window_uplinks=8,
)

FT_PARAMS = {
    "fault_tolerant": True,
    "ack_timeout": 2,
    "lease_ticks": 8,
    "violation_retry": 2,
}


def _build(spec, shard, params=None, record_history=True):
    ring = RingSink()
    tel = Telemetry(tracer=Tracer(ring))
    fleet, queries = build_workload(spec)
    cfg = RunConfig(
        "DKNN-P",
        record_history=record_history,
        shard=shard,
        params=dict(params or {}),
    )
    sim = build_system(cfg, fleet, queries, telemetry=tel)
    return sim, queries, ring


def _trace_key(events):
    return [(e.tick, e.kind, e.fields) for e in protocol_events(events)]


class TestPolicyValidation:
    """Typed-config failures raise ConfigError naming the field."""

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"check_interval": 0}, "check_interval"),
            ({"max_moves_per_cycle": 0}, "max_moves_per_cycle"),
            ({"cells_per_shard": 0}, "cells_per_shard"),
            ({"cells_per_shard": 17}, "cells_per_shard"),
            ({"min_window_uplinks": -1}, "min_window_uplinks"),
            ({"trigger": 0.9}, "trigger"),
            ({"trigger": "hot"}, "trigger"),
            ({"seed": -1}, "seed"),
        ],
    )
    def test_rebalance_policy_fields(self, kwargs, field):
        with pytest.raises(ConfigError, match=field):
            RebalancePolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"max_uplinks_per_tick": 0}, "max_uplinks_per_tick"),
            ({"max_uplinks_per_tick": 10, "max_deferred": -1},
             "max_deferred"),
            ({"max_uplinks_per_tick": 10, "settle_ticks": 0},
             "settle_ticks"),
            ({"max_uplinks_per_tick": 10, "defer": 1}, "defer"),
        ],
    )
    def test_admission_policy_fields(self, kwargs, field):
        with pytest.raises(ConfigError, match=field):
            AdmissionPolicy(**kwargs)

    def test_rebalance_needs_a_multi_shard_tier(self):
        with pytest.raises(ConfigError, match="multi-shard tier"):
            ShardConfig(shards=1, rebalance=POLICY)

    def test_wrong_policy_type_named(self):
        with pytest.raises(ConfigError, match="RebalancePolicy"):
            ShardConfig(shards=2, rebalance=POLICY.describe())
        with pytest.raises(ConfigError, match="AdmissionPolicy"):
            ShardConfig(shards=2, admission=5)

    def test_two_admission_controllers_rejected(self):
        plan = ShardFaultPlan(shed_uplinks_per_tick=10)
        with pytest.raises(ConfigError, match="one admission controller"):
            ShardConfig(
                shards=2,
                admission=AdmissionPolicy(max_uplinks_per_tick=10),
                faults=plan,
            )


class TestPartitionInvariant:
    def test_cell_ownership_is_a_partition_every_tick(self):
        sim, _, _ = _build(
            DRIFT, ShardConfig(shards=2, rebalance=POLICY)
        )
        tier = sim.server
        n = tier.router.n_shards
        side = tier._cell_side

        def check(x):
            owner = x.server._cell_owner
            assert owner is not None
            assert len(owner) == side * side
            assert not ((owner < 0) | (owner >= n)).any()

        sim.run(DRIFT.ticks, on_tick=check)
        # The run exercised the migration path, not a quiet no-op.
        assert tier.shard_stats.rebalances >= 1
        assert tier.shard_stats.cells_moved >= 1
        assert tier.shard_stats.rehomed_objects >= 1

    def test_owner_array_starts_as_the_static_grid(self):
        sim, _, _ = _build(
            DRIFT, ShardConfig(shards=2, rebalance=POLICY)
        )
        tier = sim.server
        cps = POLICY.cells_per_shard
        owner = np.asarray(tier._cell_owner).reshape(
            tier._cell_side, tier._cell_side
        )
        for row in range(tier._cell_side):
            for col in range(tier._cell_side):
                assert owner[row, col] == (row // cps) * 2 + (col // cps)


class TestCorrectnessPreserved:
    def test_rebalancing_answers_match_unsharded(self):
        base_sim, queries, _ = _build(DRIFT, None)
        base_sim.run(DRIFT.ticks)
        base = {
            q.qid: base_sim.server.answer_history[q.qid] for q in queries
        }
        sim, queries2, _ = _build(
            DRIFT, ShardConfig(shards=2, rebalance=POLICY)
        )
        sim.run(DRIFT.ticks)
        got = {q.qid: sim.server.answer_history[q.qid] for q in queries2}
        assert got == base
        assert sim.server.shard_stats.cells_moved >= 1
        # Migrations ride the backbone, not the radio.
        radio, base_radio = sim.channel.stats, base_sim.channel.stats
        assert radio.total_messages == base_radio.total_messages
        assert radio.total_bytes == base_radio.total_bytes

    def test_exactness_stays_perfect(self):
        cfg = RunConfig(
            "DKNN-P", shard=ShardConfig(shards=2, rebalance=POLICY)
        )
        m = run_once(cfg, DRIFT, accuracy_every=5)
        assert m.exactness == 1.0
        assert m.extra["rebalances"] >= 1


class TestDisabledBitIdentity:
    """``rebalance=None`` is indistinguishable from a static tier —
    answers, CommStats, and the protocol trace stream."""

    def test_static_config_unchanged_by_the_feature(self):
        spec = DRIFT
        runs = []
        for shard in (ShardConfig(shards=2), ShardConfig(shards=2)):
            sim, queries, ring = _build(spec, shard)
            sim.run(spec.ticks)
            runs.append((
                {q.qid: sim.server.answer_history[q.qid] for q in queries},
                sim.channel.stats.per_kind_table(),
                sim.channel.stats.total_bytes,
                _trace_key(ring.events()),
            ))
        assert runs[0] == runs[1]
        # And the static tier never allocates the fine-cell machinery's
        # rebalance bookkeeping beyond the always-on gauge.
        sim, _, ring = _build(spec, ShardConfig(shards=2))
        sim.run(spec.ticks)
        st = sim.server.shard_stats
        assert st.rebalances == st.cells_moved == st.rehomed_objects == 0
        kinds = {e.kind for e in protocol_events(ring.events())}
        assert not kinds & {"shard.rebalance", "shard.migrate"}

    def test_rebalance_trace_events_present_when_enabled(self):
        sim, _, ring = _build(
            DRIFT, ShardConfig(shards=2, rebalance=POLICY)
        )
        sim.run(DRIFT.ticks)
        events = protocol_events(ring.events())
        cycles = [e for e in events if e.kind == "shard.rebalance"]
        moves = [e for e in events if e.kind == "shard.migrate"]
        assert cycles and moves
        for e in cycles:
            assert e.fields["moves"] >= 1
            assert e.fields["imbalance"] >= POLICY.trigger
        for e in moves:
            assert e.fields["src_shard"] != e.fields["dst_shard"]
            assert 0 <= e.fields["cell"] < sim.server._cell_side ** 2


class TestItActuallyBalances:
    def test_imbalance_drops_versus_static(self):
        static = run_once(
            RunConfig("DKNN-P", shard=ShardConfig(shards=2)),
            DRIFT, accuracy_every=0,
        )
        rebal = run_once(
            RunConfig(
                "DKNN-P", shard=ShardConfig(shards=2, rebalance=POLICY)
            ),
            DRIFT, accuracy_every=0,
        )
        assert rebal.extra["rebalances"] >= 1
        assert (
            rebal.extra["imbalance_windowed"]
            < static.extra["imbalance_windowed"]
        )


class TestChaosComposition:
    def test_migrations_racing_crashes_zero_violations(self):
        result = run_chaos(seed=3, side=2, ticks=120, rebalance=True)
        assert result.ok, result.violations[:5]
        # Both the fault schedule and the rebalancer actually fired.
        assert result.counters["failovers"] >= 1
        assert result.counters["rebalances"] >= 1
        assert result.counters["cells_moved"] >= 1

    def test_chaos_run_is_deterministic(self):
        a = run_chaos(seed=7, side=2, ticks=90, rebalance=True)
        b = run_chaos(seed=7, side=2, ticks=90, rebalance=True)
        assert a.counters == b.counters
        assert a.violations == b.violations


class TestBackpressureHonesty:
    def _overloaded(self, defer):
        shard = ShardConfig(
            shards=2,
            admission=AdmissionPolicy(
                max_uplinks_per_tick=8, defer=defer, settle_ticks=8
            ),
        )
        sim, queries, ring = _build(DRIFT, shard, params=FT_PARAMS)
        sim.run(DRIFT.ticks)
        return sim, queries, ring

    def test_deferred_uplinks_flag_degraded_and_trace(self):
        sim, _, ring = self._overloaded(defer=True)
        st = sim.server.shard_stats
        assert st.deferred_uplinks > 0
        kinds = [e for e in protocol_events(ring.events())
                 if e.kind == "shard.defer"]
        assert kinds
        for e in kinds:
            assert 0 <= e.fields["shard"] < sim.server.router.n_shards

    def test_shed_uplinks_flag_degraded_and_trace(self):
        sim, _, ring = self._overloaded(defer=False)
        st = sim.server.shard_stats
        assert st.shed_uplinks > 0
        assert any(
            e.kind == "shard.shed" for e in protocol_events(ring.events())
        )

    def test_healthy_exactness_survives_overload(self):
        # A budget the drift bursts exceed only part of the time, so
        # the run has both degraded and vouched-for samples.
        shard = ShardConfig(
            shards=2,
            admission=AdmissionPolicy(max_uplinks_per_tick=150, defer=True),
        )
        cfg = RunConfig("DKNN-P", shard=shard, params=dict(FT_PARAMS))
        m = run_once(cfg, DRIFT, accuracy_every=2)
        assert m.extra["deferred/tick"] > 0
        # Overload degraded some answers — but every answer the tier
        # vouched for was exact (the admission path flags, not hides).
        assert 0 < m.extra["degraded_frac"] < 1
        assert m.extra["healthy_exactness"] == 1.0


class TestHotspotDriftParity:
    """The drift kernel's SoA fast path is bit-identical to the scalar
    reference model (same RNG draw order, positions a pure function of
    the tick counter)."""

    def test_fast_and_scalar_answers_identical(self):
        spec = DRIFT.but(ticks=30)
        results = {}
        for fast in (False, True):
            cfg = RunConfig("DKNN-B", fast=fast, record_history=True)
            fleet, queries = build_workload(spec)
            sim = build_system(cfg, fleet, queries)
            sim.run(spec.ticks)
            results[fast] = {
                q.qid: sim.server.answer_history[q.qid] for q in queries
            }
        assert results[True] == results[False]
