"""Wall-clock replay: stream_replay framing, drift stats, validation.

The replay pipeline is two halves: the engine's ``replay.snapshot``
emission (full ticks only, per :class:`ReplayConfig`) and
:func:`repro.obs.replay.stream_replay`, which interpolates the gaps
and measures how far a hold-last-snapshot viewer would have drifted.
The synthetic-stream tests pin the framing math exactly; the
end-to-end test runs a real event-mode simulation and replays its
trace.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.algorithms import build_system
from repro.experiments.config import RunConfig
from repro.net.engine import EngineConfig, ReplayConfig
from repro.obs import (
    ReplayFrame,
    ReplayStats,
    RingSink,
    Telemetry,
    Tracer,
    stream_replay,
)
from repro.obs.trace import TraceEvent
from repro.workloads import WorkloadSpec, build_workload


def _snap(tick, xs, ys, answers=None):
    return {
        "kind": "replay.snapshot",
        "tick": tick,
        "count": len(xs),
        "population": len(xs),
        "xs": xs,
        "ys": ys,
        "answers": answers or {},
    }


def _collect(events, **kwargs):
    frames = []
    stats = stream_replay(events, emit=frames.append, **kwargs)
    return frames, stats


class TestFraming:
    def test_single_snapshot_single_frame(self):
        frames, stats = _collect([_snap(5, [1.0], [2.0])])
        assert len(frames) == 1
        assert frames[0] == ReplayFrame(
            tick=5.0, xs=[1.0], ys=[2.0], answers={}, interpolated=False
        )
        assert stats.snapshots == 1
        assert stats.ticks_covered == 1
        assert stats.max_gap == 0

    def test_gap_interpolates(self):
        frames, stats = _collect(
            [_snap(0, [0.0], [0.0]), _snap(4, [8.0], [0.0])],
            frames_per_tick=2,
        )
        # 1 first frame + (4 ticks * 2 - 1) interpolated + 1 endpoint.
        assert len(frames) == 9
        mid = frames[1:-1]
        assert all(f.interpolated for f in mid)
        assert not frames[0].interpolated and not frames[-1].interpolated
        # Linear in x: frame ticks and xs advance together.
        assert [round(f.tick, 3) for f in frames] == [
            0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0
        ]
        assert [round(f.xs[0], 3) for f in frames] == [
            0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        ]
        assert stats.max_gap == 4
        assert stats.frames == 9

    def test_interpolated_frames_hold_previous_answers(self):
        frames, _ = _collect(
            [
                _snap(0, [0.0], [0.0], {"0": [1, 2]}),
                _snap(2, [2.0], [0.0], {"0": [3, 4]}),
            ]
        )
        assert frames[0].answers == {0: [1, 2]}
        for f in frames[1:-1]:
            assert f.answers == {0: [1, 2]}, "answers must not interpolate"
        assert frames[-1].answers == {0: [3, 4]}

    def test_drift_stats(self):
        # One object moves 3-4-5; the other sits still.
        _, stats = _collect(
            [_snap(0, [0.0, 9.0], [0.0, 9.0]), _snap(5, [3.0, 9.0], [4.0, 9.0])]
        )
        assert stats.max_drift == pytest.approx(5.0)
        assert stats.mean_drift == pytest.approx(2.5)

    def test_non_snapshot_events_are_skipped(self):
        frames, stats = _collect(
            [
                {"kind": "run.start", "tick": 0},
                _snap(1, [0.0], [0.0]),
                {"kind": "tick.phase", "tick": 2},
                _snap(3, [1.0], [1.0]),
            ]
        )
        assert stats.snapshots == 2
        assert frames[0].tick == 1.0 and frames[-1].tick == 3.0

    def test_trace_event_and_dict_inputs_agree(self):
        dicts = [_snap(0, [0.0], [0.0]), _snap(3, [3.0], [3.0])]
        events = [
            TraceEvent(
                d["tick"],
                d["kind"],
                {k: v for k, v in d.items() if k not in ("tick", "kind")},
            )
            for d in dicts
        ]
        f1, s1 = _collect(dicts)
        f2, s2 = _collect(events)
        assert f1 == f2
        assert s1.mean_drift == s2.mean_drift
        assert s1.frames == s2.frames

    def test_empty_stream(self):
        frames, stats = _collect([])
        assert frames == []
        assert stats == ReplayStats()
        assert stats.ticks_covered == 0


class TestValidation:
    def test_out_of_order_snapshots_raise(self):
        with pytest.raises(ConfigError, match="out of order"):
            _collect([_snap(5, [0.0], [0.0]), _snap(5, [1.0], [1.0])])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frames_per_tick": 0},
            {"frames_per_tick": True},
            {"frames_per_tick": 1.5},
            {"tick_seconds": -0.1},
        ],
    )
    def test_bad_args(self, kwargs):
        with pytest.raises(ConfigError):
            stream_replay([], **kwargs)

    def test_garbage_event_raises(self):
        with pytest.raises(ConfigError, match="TraceEvent or dict"):
            stream_replay([42])


class TestEndToEnd:
    def test_event_run_replays_with_gaps(self):
        spec = WorkloadSpec(
            n_objects=200,
            n_queries=2,
            k=3,
            universe_size=2000.0,
            mobility="mostly_stationary",
            mobility_options={
                "moving_fraction": 0.05,
                "period": 20,
                "active_ticks": 4,
            },
            query_speed=0,
            seed=3,
        )
        fleet, queries = build_workload(spec)
        sink = RingSink()
        cfg = RunConfig(
            "DKNN-P",
            engine=EngineConfig(
                mode="event", replay=ReplayConfig(max_objects=32)
            ),
        )
        sim = build_system(
            cfg, fleet, queries, telemetry=Telemetry(tracer=Tracer(sink))
        )
        sim.run(50)
        driver = sim._driver
        assert driver.skipped_ticks > 0
        snaps = sink.events("replay.snapshot")
        # Snapshots come from full ticks only.
        assert len(snaps) == driver.full_ticks
        assert all(len(e.fields["xs"]) <= 32 for e in snaps)
        frames, stats = _collect(snaps)
        assert stats.snapshots == len(snaps)
        # The skipped stretches are exactly the interpolation gaps.
        assert stats.max_gap > 1
        assert any(f.interpolated for f in frames)
        assert stats.ticks_covered <= 50
