"""Reproducibility guarantees: identical inputs give identical runs.

Experiment credibility rests on these: every algorithm sees the exact
same motion for a given spec, and repeated runs produce byte-identical
accounting.
"""

import pytest

from repro.experiments.algorithms import ALGORITHMS, build_system
from repro.experiments.config import RunConfig
from repro.mobility import record_trace
from repro.workloads import WorkloadSpec, build_workload

SPEC = WorkloadSpec(
    n_objects=120, n_queries=2, k=4, seed=61, ticks=10, warmup_ticks=1
)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_identical_runs_identical_accounting(algorithm):
    def run():
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig(algorithm), fleet, queries)
        sim.run(30)
        stats = sim.channel.stats
        return (
            stats.total_messages,
            stats.total_bytes,
            dict(stats.sent_by_kind),
            {qid: tuple(ids) for qid, ids in sim.server.answers.items()},
        )

    assert run() == run()


def test_all_algorithms_see_identical_motion():
    """The workload builder must hand every algorithm the same world."""
    snapshots = []
    for _ in range(2):
        fleet, _ = build_workload(SPEC)
        for _ in range(20):
            fleet.advance()
        snapshots.append(list(fleet.positions))
    assert snapshots[0] == snapshots[1]


def test_trace_replay_through_a_full_system():
    """A recorded trace replayed as the fleet drives a protocol run."""
    from repro.core.broadcast_variant import build_broadcast_system
    from repro.server import QuerySpec
    from tests.helpers import ExactnessChecker

    fleet, queries = build_workload(SPEC)
    trace = record_trace(fleet, 25)

    replay = trace.replay()
    sim = build_broadcast_system(replay, queries)
    checker = ExactnessChecker(replay, queries)
    sim.run(20, on_tick=checker)
    checker.assert_clean()
    # The replayed positions must match the recording tick for tick.
    assert list(replay.positions) == trace.frames[20]


def test_different_seeds_change_traffic():
    fleet_a, queries = build_workload(SPEC)
    sim_a = build_system(RunConfig("DKNN-B"), fleet_a, queries)
    sim_a.run(25)
    fleet_b, queries_b = build_workload(SPEC.but(seed=62))
    sim_b = build_system(RunConfig("DKNN-B"), fleet_b, queries_b)
    sim_b.run(25)
    assert (
        sim_a.channel.stats.total_messages
        != sim_b.channel.stats.total_messages
        or sim_a.server.answers != sim_b.server.answers
    )
