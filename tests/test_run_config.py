"""RunConfig: validation, the removed legacy API, and the catalog."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import (
    ALGORITHMS,
    FaultPlan,
    RunConfig,
    ShardConfig,
    ShardFaultPlan,
    WorkloadSpec,
    build_system,
    build_workload,
    run_once,
)
from repro.errors import ConfigError, ExperimentError
from repro.experiments.catalog import CENTRALIZED, DISTRIBUTED

SPEC = WorkloadSpec(
    n_objects=120, n_queries=2, k=4, ticks=15, warmup_ticks=2, seed=17
)


class TestValidation:
    def test_unknown_algorithm_suggests_near_miss(self):
        with pytest.raises(ExperimentError, match="DKNN-P"):
            RunConfig("DKNN-p")

    def test_unknown_param_suggests_near_miss(self):
        with pytest.raises(ExperimentError, match="lease_ticks"):
            RunConfig("DKNN-G", params={"lease_tick": 5})

    def test_unknown_param_lists_valid_names(self):
        with pytest.raises(ExperimentError, match="period"):
            RunConfig("PER", params={"frequency": 3})

    def test_unknown_latency_rejected(self):
        with pytest.raises(ExperimentError):
            RunConfig("PER", latency="two_ticks")

    def test_faults_must_be_a_plan(self):
        with pytest.raises(ExperimentError):
            RunConfig("PER", faults={"drop": 0.1})

    def test_negative_bounds_rejected(self):
        with pytest.raises(ExperimentError):
            RunConfig("PER", ticks=-1)
        with pytest.raises(ExperimentError):
            RunConfig("PER", warmup=-1)


class TestImmutability:
    def test_frozen(self):
        cfg = RunConfig("DKNN-P")
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.algorithm = "PER"

    def test_params_mapping_is_read_only(self):
        cfg = RunConfig("DKNN-P", params={"theta": 50.0})
        with pytest.raises(TypeError):
            cfg.params["theta"] = 1.0

    def test_hashable_and_usable_as_key(self):
        a = RunConfig("DKNN-P", params={"theta": 50.0})
        b = RunConfig("DKNN-P", params={"theta": 50.0})
        assert a == b
        assert {a: 1}[b] == 1

    def test_but_revalidates(self):
        cfg = RunConfig("DKNN-P")
        faster = cfg.but(fast=True)
        assert faster.fast and not cfg.fast
        with pytest.raises(ExperimentError):
            cfg.but(params={"warp_factor": 9})

    def test_describe_is_json_safe(self):
        cfg = RunConfig(
            "DKNN-G", fast=True, faults=FaultPlan(seed=3, drop_uplink=0.1),
            params={"lease_ticks": 4},
        )
        doc = json.loads(json.dumps(cfg.describe()))
        assert doc["algorithm"] == "DKNN-G"
        assert doc["resolved_params"]["lease_ticks"] == 4
        assert "drop_up=0.1" in doc["faults"]


class TestCatalog:
    def test_param_defaults_exposed_programmatically(self):
        assert ALGORITHMS["DKNN-G"].param_defaults == {
            "s_cap": 50.0,
            "initial_collect_radius": 1000.0,
            "collect_slack": 1.5,
            "lease_ticks": 10,
        }
        assert ALGORITHMS["PER"].param_defaults == {
            "grid_cells": 32,
            "period": 1,
        }

    def test_lease_ticks_defaults_diverge_on_purpose(self):
        # DKNN-P's lease is a failure-detection timeout; DKNN-G's is a
        # renewal geocast interval. They are different knobs that share
        # a name — see repro/experiments/catalog.py. Unifying them
        # silently re-tunes E12/E14.
        assert ALGORITHMS["DKNN-P"].param_defaults["lease_ticks"] == 8
        assert ALGORITHMS["DKNN-G"].param_defaults["lease_ticks"] == 10

    def test_families_cover_every_algorithm(self):
        assert set(DISTRIBUTED) | set(CENTRALIZED) == set(ALGORITHMS)

    def test_docstring_table_is_generated_from_catalog(self):
        import repro.experiments.algorithms as algorithms

        doc = algorithms.__doc__
        assert "theta=100.0" in doc
        assert "lease_ticks=10" in doc
        assert "{PARAM_TABLE}" not in doc

    def test_resolved_params_overlay(self):
        cfg = RunConfig("DKNN-P", params={"theta": 7.0})
        resolved = cfg.resolved_params()
        assert resolved["theta"] == 7.0
        assert resolved["s_cap"] == 50.0


class TestLegacyApiRemoved:
    """The pre-1.0 string-algorithm forms are gone, not deprecated.

    Both entry points raise an ``ExperimentError`` whose message names
    the migration (``RunConfig``), so old call sites fail with
    directions instead of an ``AttributeError`` three frames deep.
    """

    def test_build_system_string_form_raises_with_migration(self):
        fleet, queries = build_workload(SPEC)
        with pytest.raises(ExperimentError, match="RunConfig"):
            build_system("DKNN-P", fleet, queries)

    def test_run_once_string_form_raises_with_migration(self):
        with pytest.raises(ExperimentError, match="RunConfig"):
            run_once("PER", SPEC)

    def test_legacy_kwargs_no_longer_accepted(self):
        with pytest.raises(TypeError):
            run_once(RunConfig("PER"), SPEC, alg_params={"period": 2})
        with pytest.raises(TypeError):
            run_once(RunConfig("PER"), SPEC, faults=None, fast=True)

    def test_config_from_legacy_is_gone(self):
        import repro.experiments.config as config_mod

        assert not hasattr(config_mod, "config_from_legacy")

    def test_build_system_rejects_non_config(self):
        fleet, queries = build_workload(SPEC)
        with pytest.raises(ExperimentError):
            build_system(42, fleet, queries)

    def test_ticks_and_warmup_override_the_spec(self):
        m = run_once(
            RunConfig("PER", ticks=9, warmup=3), SPEC, accuracy_every=0
        )
        assert m.ticks_measured == 6
        assert m.spec.ticks == 9 and m.spec.warmup_ticks == 3


class TestShardField:
    def test_default_is_unsharded(self):
        cfg = RunConfig("DKNN-P")
        assert cfg.shard is None

    def test_validation(self):
        cfg = RunConfig("DKNN-P", shard=ShardConfig(shards=1))
        assert cfg.shard.shards == 1
        with pytest.raises(ConfigError, match="shards"):
            ShardConfig(shards=0)
        with pytest.raises(ConfigError, match="shards"):
            ShardConfig(shards=65)
        with pytest.raises(ConfigError, match="ShardConfig"):
            RunConfig("DKNN-P", shard=2)

    def test_in_describe_and_hash(self):
        sharded = RunConfig("DKNN-P", shard=ShardConfig(shards=2))
        assert sharded.describe()["shard"]["shards"] == 2
        assert "shards" not in sharded.describe()
        assert sharded != RunConfig("DKNN-P")
        assert hash(sharded) != hash(RunConfig("DKNN-P"))

    def test_build_system_installs_the_tier(self):
        from repro.api import ShardedServer

        fleet, queries = build_workload(SPEC)
        sim = build_system(
            RunConfig("DKNN-P", shard=ShardConfig(shards=2)), fleet, queries
        )
        assert isinstance(sim.server, ShardedServer)
        assert sim.server.router.n_shards == 4

    def test_but_roundtrips(self):
        cfg = RunConfig("DKNN-P", shard=ShardConfig(shards=2))
        copy = cfg.but(fast=True)
        assert copy.shard == cfg.shard
        swapped = cfg.but(shard=ShardConfig(shards=4))
        assert swapped.shard.shards == 4


class TestRetiredShardKwargs:
    """``shards=`` / ``shard_faults=`` were removed after one release
    as a deprecation shim; passing either now raises a
    :class:`ConfigError` that names the replacement instead of the
    generic ``TypeError`` an unknown kwarg would produce."""

    def test_shards_raises_and_names_replacement(self):
        with pytest.raises(ConfigError, match=r"shard=ShardConfig"):
            RunConfig("DKNN-P", shards=2)

    def test_shard_faults_raises_and_names_replacement(self):
        plan = ShardFaultPlan(crashes=((0, 5, 9),))
        with pytest.raises(ConfigError, match=r"shard=ShardConfig"):
            RunConfig("DKNN-P", shard_faults=plan)

    def test_both_retired_kwargs_named_in_message(self):
        with pytest.raises(ConfigError, match=r"shards=, shard_faults="):
            RunConfig(
                "DKNN-P", shards=2, shard_faults=ShardFaultPlan()
            )

    def test_but_rejects_retired_kwargs_with_same_error(self):
        cfg = RunConfig("DKNN-P")
        with pytest.raises(ConfigError, match=r"shard=ShardConfig"):
            cfg.but(shards=2)

    def test_fields_are_gone(self):
        cfg = RunConfig("DKNN-P", shard=ShardConfig(shards=2))
        assert not hasattr(cfg, "shards")
        assert not hasattr(cfg, "shard_faults")

    def test_truly_unknown_kwarg_is_still_a_typeerror(self):
        with pytest.raises(TypeError):
            RunConfig("DKNN-P", sharding=2)
