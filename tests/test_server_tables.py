"""Unit tests for the server-side object and query tables."""

import pytest

from repro.errors import IndexError_, ProtocolError
from repro.server import ObjectTable, QuerySpec, QueryTable


@pytest.fixture
def table(universe):
    return ObjectTable(universe, grid_cells=10, theta=100.0)


class TestObjectTable:
    def test_negative_theta_raises(self, universe):
        with pytest.raises(IndexError_):
            ObjectTable(universe, 10, theta=-1)

    def test_report_inserts_then_updates(self, table):
        table.report(1, 100, 100, tick=1)
        assert 1 in table
        assert table.last_position(1) == (100, 100)
        table.report(1, 200, 200, tick=2)
        assert table.last_position(1) == (200, 200)
        assert table.previous_position(1) == (100, 100)
        assert len(table) == 1

    def test_first_report_has_self_as_previous(self, table):
        table.report(1, 100, 100, tick=1)
        assert table.previous_position(1) == (100, 100)

    def test_report_tick_tracking(self, table):
        table.report(1, 100, 100, tick=3)
        assert table.report_tick_of(1) == 3

    def test_freshness_is_per_tick(self, table):
        table.report(1, 100, 100, tick=3)
        assert table.is_fresh(1, 3)
        assert not table.is_fresh(1, 4)

    def test_mark_fresh_via_probe(self, table):
        table.report(1, 100, 100, tick=1)
        table.mark_fresh(1, 110, 110, tick=5)
        assert table.is_fresh(1, 5)
        assert table.last_position(1) == (110, 110)

    def test_unknown_object_raises(self, table):
        with pytest.raises(IndexError_):
            table.last_position(9)
        with pytest.raises(IndexError_):
            table.previous_position(9)
        with pytest.raises(IndexError_):
            table.report_tick_of(9)

    def test_forget(self, table):
        table.report(1, 100, 100, tick=1)
        table.forget(1)
        assert 1 not in table
        with pytest.raises(IndexError_):
            table.forget(1)

    def test_uncertainty_bound(self, table):
        assert table.uncertainty_bound() == 100.0
        assert table.uncertainty_bound(extra=50.0) == 150.0

    def test_grid_reflects_reports(self, table):
        table.report(1, 100, 100, tick=1)
        table.report(2, 9900, 9900, tick=1)
        assert set(table.grid.ids()) == {1, 2}

    def test_ids(self, table):
        table.report(3, 1, 1, tick=0)
        table.report(5, 2, 2, tick=0)
        assert set(table.ids()) == {3, 5}


class TestQuerySpec:
    def test_invalid_k_raises(self):
        with pytest.raises(ProtocolError):
            QuerySpec(qid=1, focal_oid=0, k=0)

    def test_invalid_focal_raises(self):
        with pytest.raises(ProtocolError):
            QuerySpec(qid=1, focal_oid=-1, k=2)

    def test_frozen(self):
        spec = QuerySpec(qid=1, focal_oid=0, k=2)
        with pytest.raises(Exception):
            spec.k = 3


class TestQueryTable:
    def test_register_and_get(self):
        qt = QueryTable()
        spec = QuerySpec(qid=1, focal_oid=7, k=3)
        qt.register(spec)
        assert qt.get(1) is spec
        assert 1 in qt
        assert len(qt) == 1

    def test_duplicate_registration_raises(self):
        qt = QueryTable()
        qt.register(QuerySpec(qid=1, focal_oid=7, k=3))
        with pytest.raises(ProtocolError):
            qt.register(QuerySpec(qid=1, focal_oid=8, k=3))

    def test_get_unknown_raises(self):
        with pytest.raises(ProtocolError):
            QueryTable().get(4)

    def test_queries_of_focal(self):
        qt = QueryTable()
        qt.register(QuerySpec(qid=1, focal_oid=7, k=3))
        qt.register(QuerySpec(qid=2, focal_oid=7, k=5))
        qt.register(QuerySpec(qid=3, focal_oid=8, k=5))
        assert sorted(qt.queries_of_focal(7)) == [1, 2]
        assert qt.queries_of_focal(99) == []

    def test_deregister(self):
        qt = QueryTable()
        qt.register(QuerySpec(qid=1, focal_oid=7, k=3))
        spec = qt.deregister(1)
        assert spec.qid == 1
        assert 1 not in qt
        assert qt.queries_of_focal(7) == []
        with pytest.raises(ProtocolError):
            qt.deregister(1)

    def test_iteration(self):
        qt = QueryTable()
        qt.register(QuerySpec(qid=1, focal_oid=7, k=3))
        qt.register(QuerySpec(qid=2, focal_oid=8, k=3))
        assert {s.qid for s in qt} == {1, 2}
