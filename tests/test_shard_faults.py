"""The shard-tier failure model: plan, backbone faults, failover.

Four contracts are pinned here:

* **Zero-fault bit-identity** — ``shard_faults=None`` and a disabled
  ``ShardFaultPlan()`` produce byte-identical answers, CommStats, and
  protocol trace streams for every algorithm and shard grid, with and
  without a radio FaultPlan (the tier's fault machinery must be
  perfectly inert when the plan is off);
* **Backbone faults** — crash and partition windows drop messages
  deterministically at the link, on top of (and independent of) the
  seeded probabilistic drop; handoff retries back off exponentially
  instead of firing every tick;
* **Failover** — missed heartbeats trigger a buddy takeover (coverage
  and queries), a restart heartbeat hands everything back, answers
  served meanwhile are annotated degraded and the windows close with
  recorded recovery latencies — including the false-suspicion case
  where a partition (not a crash) severed the heartbeats;
* **Loss races** — a dropped ``borrow_reply`` terminates with a
  degraded annotation instead of hanging, and a delayed
  ``handoff_ack`` arriving after a second boundary crossing never
  creates double ownership.
"""

from __future__ import annotations

import pytest

from repro.api import (
    FaultPlan,
    RunConfig,
    ShardConfig,
    ShardFaultPlan,
    WorkloadSpec,
    build_system,
    build_workload,
    run_once,
    shard_attach,
)
from repro.errors import ConfigError, FaultError
from repro.net.shardlink import SHARD_HEARTBEAT, SHARD_REPLICATE, ShardLink
from repro.net.stats import CommStats
from repro.obs import RingSink, Telemetry, Tracer, protocol_events

SPEC = WorkloadSpec(
    n_objects=250, n_queries=3, k=4, ticks=24, warmup_ticks=4, seed=13
)

RADIO_FAULTS = FaultPlan(
    seed=5, drop_uplink=0.05, drop_downlink=0.05, dup_prob=0.02,
    delay_prob=0.03,
)

FT_PARAMS = {
    "fault_tolerant": True,
    "ack_timeout": 2,
    "lease_ticks": 8,
    "violation_retry": 2,
}

ALGS = ("DKNN-P", "DKNN-B", "DKNN-G")


class TestShardFaultPlan:
    def test_default_plan_is_disabled(self):
        plan = ShardFaultPlan()
        assert not plan.enabled
        assert repr(plan) == "ShardFaultPlan(disabled)"

    def test_each_knob_enables(self):
        assert ShardFaultPlan(link_drop=0.1).enabled
        assert ShardFaultPlan(link_delay=1).enabled
        assert ShardFaultPlan(crashes=((0, 1, 2),)).enabled
        assert ShardFaultPlan(partitions=((0, 1, 2, 3),)).enabled
        assert ShardFaultPlan(shed_uplinks_per_tick=10).enabled
        # Tuning knobs alone do not enable the plan.
        assert not ShardFaultPlan(heartbeat_timeout=5, seed=3).enabled

    def test_crash_windows(self):
        plan = ShardFaultPlan(crashes=((1, 10, 20), (2, 5, None)))
        assert plan.is_down(1, 10) and plan.is_down(1, 19)
        assert not plan.is_down(1, 9) and not plan.is_down(1, 20)
        # t1=None: permanent.
        assert plan.is_down(2, 5) and plan.is_down(2, 10 ** 6)
        assert not plan.is_down(0, 10)

    def test_partitions_are_symmetric_and_windowed(self):
        plan = ShardFaultPlan(partitions=((0, 3, 4, 8),))
        assert plan.is_partitioned(0, 3, 4)
        assert plan.is_partitioned(3, 0, 7)
        assert not plan.is_partitioned(0, 3, 8)
        assert not plan.is_partitioned(0, 1, 5)
        assert plan.active_partitions(5) == ((0, 3),)
        assert plan.active_partitions(9) == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"link_drop": 1.0},
            {"link_drop": -0.1},
            {"link_delay": -1},
            {"heartbeat_timeout": 0},
            {"recovery_settle_ticks": 0},
            {"shed_uplinks_per_tick": 0},
            {"crashes": ((0, 10, 10),)},
            {"crashes": ((0, -1, 5),)},
            {"crashes": ((-1, 0, 5),)},
            {"partitions": ((0, 0, 1, 2),)},
            {"partitions": ((0, 1, 5, 5),)},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(FaultError):
            ShardFaultPlan(**kwargs)

    def test_unknown_kwarg_gets_near_miss(self):
        with pytest.raises(FaultError, match="did you mean 'link_drop'"):
            ShardFaultPlan(linkdrop=0.1)

    def test_runconfig_plumbs_and_validates(self):
        plan = ShardFaultPlan(crashes=((0, 5, 9),))
        cfg = RunConfig("DKNN-P", shard=ShardConfig(shards=2, faults=plan))
        assert cfg.shard.faults is plan
        assert "ShardFaultPlan" in cfg.describe()["shard"]["faults"]
        # ... a wrong type names the expected one...
        with pytest.raises(ConfigError, match="ShardFaultPlan"):
            ShardConfig(shards=2, faults=RADIO_FAULTS)
        # ... and a disabled plan is allowed anywhere.
        RunConfig("DKNN-P", shard=ShardConfig(faults=ShardFaultPlan()))

    def test_single_shard_rejected_with_actionable_message(self):
        # shards=1 is a single shard server: no buddy to fail over to,
        # no backbone to partition — an enabled plan could never act.
        # The error must say so instead of silently ignoring the plan.
        plan = ShardFaultPlan(crashes=((0, 5, 9),))
        with pytest.raises(ConfigError, match="multi-shard tier"):
            ShardConfig(shards=1, faults=plan)
        # Disabled plans stay allowed: nothing to act on either way.
        ShardConfig(shards=1, faults=ShardFaultPlan())


def _run(algorithm, shards, shard_faults=None, faults=None, params=None):
    ring = RingSink()
    tel = Telemetry(tracer=Tracer(ring))
    fleet, queries = build_workload(SPEC)
    cfg = RunConfig(
        algorithm,
        record_history=True,
        faults=faults,
        shard=ShardConfig(shards=shards, faults=shard_faults),
        params=dict(params or {}),
    )
    sim = build_system(cfg, fleet, queries, telemetry=tel)
    sim.run(SPEC.ticks)
    hist = {q.qid: sim.server.answer_history[q.qid] for q in queries}
    return hist, sim, ring.events()


class TestDisabledPlanBitIdentity:
    """A disabled plan must be indistinguishable from no plan at all:
    same answers, same CommStats, same protocol trace stream."""

    @pytest.mark.parametrize("algorithm", ALGS)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_identical_without_radio_faults(self, algorithm, shards):
        base_h, base_sim, base_ev = _run(algorithm, shards)
        got_h, got_sim, got_ev = _run(
            algorithm, shards, shard_faults=ShardFaultPlan()
        )
        assert got_h == base_h
        a, b = base_sim.channel.stats, got_sim.channel.stats
        assert a.per_kind_table() == b.per_kind_table()
        assert a.total_bytes == b.total_bytes
        assert a.server_to_server_messages == b.server_to_server_messages
        assert a.server_to_server_bytes == b.server_to_server_bytes
        key = lambda evs: [
            (e.tick, e.kind, e.fields) for e in protocol_events(evs)
        ]
        assert key(got_ev) == key(base_ev)

    @pytest.mark.parametrize("algorithm", ALGS)
    @pytest.mark.parametrize("shards", [2, 4])
    def test_identical_under_radio_faultplan(self, algorithm, shards):
        params = FT_PARAMS if algorithm == "DKNN-P" else {}
        base_h, base_sim, base_ev = _run(
            algorithm, shards, faults=RADIO_FAULTS, params=params
        )
        got_h, got_sim, got_ev = _run(
            algorithm,
            shards,
            faults=RADIO_FAULTS,
            shard_faults=ShardFaultPlan(),
            params=params,
        )
        assert got_h == base_h
        a, b = base_sim.channel.stats, got_sim.channel.stats
        assert a.per_kind_table() == b.per_kind_table()
        assert a.total_bytes == b.total_bytes
        key = lambda evs: [
            (e.tick, e.kind, e.fields) for e in protocol_events(evs)
        ]
        assert key(got_ev) == key(base_ev)

    def test_no_heartbeats_or_replication_when_disabled(self):
        _, sim, _ = _run("DKNN-P", 2, shard_faults=ShardFaultPlan())
        link = sim.server.link
        assert link.sent_by_kind[SHARD_HEARTBEAT] == 0
        assert link.sent_by_kind[SHARD_REPLICATE] == 0
        assert sim.server.shard_stats.failovers == 0
        assert not sim.server.stall_tolerant


class TestLinkFaults:
    def _link(self, plan, n=4, delay=0):
        stats = CommStats()
        seen = []
        link = ShardLink(
            n, stats, seen.append, delay_ticks=delay, fault_plan=plan
        )
        return link, seen

    def test_crash_drops_both_directions(self):
        plan = ShardFaultPlan(crashes=((1, 5, 10),))
        link, seen = self._link(plan)
        link.begin_tick(5)
        assert link.send("forward", 0, 1, 8) is None
        assert link.send("forward", 1, 0, 8) is None
        assert link.crash_dropped == 2 and link.dropped == 2
        link.begin_tick(10)
        assert link.send("forward", 0, 1, 8) is not None
        assert len(seen) == 1
        # Accounting still counts the dropped sends (the bytes were
        # transmitted into the dead endpoint).
        assert link.stats.server_to_server_messages == 3

    def test_partition_drops_cross_pair_only(self):
        plan = ShardFaultPlan(partitions=((0, 2, 3, 6),))
        link, seen = self._link(plan)
        link.begin_tick(4)
        assert link.send("borrow", 0, 2, 8) is None
        assert link.send("borrow", 2, 0, 8) is None
        assert link.send("borrow", 0, 1, 8) is not None
        assert link.partition_dropped == 2
        link.begin_tick(6)
        assert link.send("borrow", 0, 2, 8) is not None
        assert len(seen) == 2

    def test_send_time_semantics_for_delayed_messages(self):
        # A message that left before the partition opened is delivered
        # even though it arrives during the cut: checks are send-time.
        plan = ShardFaultPlan(partitions=((0, 1, 5, 9),))
        link, seen = self._link(plan, delay=2)
        link.begin_tick(4)
        assert link.send("migrate", 0, 1, 8) is not None
        link.begin_tick(6)
        assert len(seen) == 1


class TestHandoffBackoff:
    """Satellite: lost handoffs retry with exponential backoff + cap,
    and the first retry fires on the very tick it did pre-backoff."""

    def test_first_retry_tick_matches_legacy_schedule(self):
        # Drive the schedule directly: a fresh handoff sent at tick T
        # over a delay-d link must become retryable at exactly T+d+1.
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        tier = shard_attach(sim, 4, link_delay=2)
        sim.run(2)
        tier._tick = 10
        tier._owner[queries[0].qid] = 0
        tier._handoff_pending[queries[0].qid] = 3
        tier._send_handoff(queries[0].qid, 0, 3)
        assert tier._retry_at[queries[0].qid] == 10 + 2 + 1
        assert tier._retry_gap[queries[0].qid] == 1

    def test_backoff_widens_and_caps_under_partition(self):
        # Pin a handoff to a permanently-partitioned destination and
        # step the retry sweep by hand: the gaps must double to the
        # cap (8) and never past it, so the retry count stays far
        # below one-per-tick.
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        plan = ShardFaultPlan(seed=3, partitions=((0, 1, 0, 10 ** 6),))
        tier = shard_attach(sim, 2, faults=plan)
        sim.run(2)
        qid = queries[0].qid
        tier._tick = 10
        tier._owner[qid] = 0
        tier._handoff_pending[qid] = 1
        tier._send_handoff(qid, 0, 1)  # dropped by the partition
        retry_ticks = []
        for tick in range(11, 91):
            tier._tick = tick
            before = tier.shard_stats.handoff_retries
            tier._retry_pending_handoffs()
            if tier.shard_stats.handoff_retries > before:
                retry_ticks.append(tick)
        assert retry_ticks, "retries never fired"
        # First retransmit is on the legacy schedule (tick 11).
        assert retry_ticks[0] == 11
        # The gap saturates at the cap, never past it.
        assert tier._retry_gap[qid] == 8
        gaps = [b - a for a, b in zip(retry_ticks, retry_ticks[1:])]
        assert all(2 <= g <= 8 + 7 for g in gaps)
        # Every-tick retrying would fire ~80 times over this window;
        # doubling gaps keep it an order of magnitude lower.
        assert len(retry_ticks) <= 15

    def _retry_schedule(self, side, seed):
        """The exact retry-tick sequence of one pinned lost handoff."""
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        plan = ShardFaultPlan(seed=seed, partitions=((0, 1, 0, 10 ** 6),))
        tier = shard_attach(sim, side, faults=plan)
        sim.run(2)
        qid = queries[0].qid
        tier._tick = 10
        tier._owner[qid] = 0
        tier._handoff_pending[qid] = 1
        tier._send_handoff(qid, 0, 1)
        ticks = []
        for tick in range(11, 91):
            tier._tick = tick
            before = tier.shard_stats.handoff_retries
            tier._retry_pending_handoffs()
            if tier.shard_stats.handoff_retries > before:
                ticks.append(tick)
        return ticks

    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_retry_schedule_deterministic_per_seed(self, side):
        # The backoff jitter is seeded: the same (plan seed, grid)
        # must replay the identical retransmit schedule, tick for
        # tick, at every grid size — determinism is what makes a
        # failing chaos seed replayable.
        first = self._retry_schedule(side, seed=3)
        again = self._retry_schedule(side, seed=3)
        assert first, "retries never fired"
        assert first == again
        # The first retransmit is always the legacy (pre-backoff)
        # schedule — jitter only enters from the second one on.
        assert first[0] == 11

    def test_retry_jitter_varies_with_seed(self):
        # Different plan seeds draw different jitter: at least one
        # retransmit tick differs (the schedule is seeded, not fixed).
        a = self._retry_schedule(2, seed=3)
        b = self._retry_schedule(2, seed=4)
        assert a and b
        assert a != b


class TestLossRaces:
    """Satellite: the two nastiest backbone races stay safe."""

    def test_dropped_borrow_reply_terminates_degraded(self):
        # A certain-loss backbone: every borrow reply dies. The run
        # must complete (no hang), and the borrowing queries must be
        # annotated degraded rather than silently wrong.
        spec = SPEC.but(ticks=30)
        fleet, queries = build_workload(spec)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        plan = ShardFaultPlan(seed=11, link_drop=0.9)
        tier = shard_attach(sim, 4, faults=plan)
        sim.run(spec.ticks)  # terminates: structurally no reply wait
        if tier.shard_stats.lost_borrows:
            # At least one query carried the degraded annotation at
            # some point (recorded as an opened-and-possibly-closed
            # window).
            flagged = len(tier._degraded_overlay) + len(
                tier.shard_stats.recovery_latencies
            )
            assert flagged > 0

    def test_delayed_ack_after_second_crossing_single_owner(self):
        # Ping-pong a handoff by hand: owner 0 -> 1 (commit delayed),
        # focal swings back before the ack lands. The superseded check
        # must leave exactly one owner at every step.
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        tier = shard_attach(sim, 2, link_delay=3)
        sim.run(2)
        qid = queries[0].qid
        tier._owner[qid] = 0
        tier._maybe_handoff(qid, 1)  # in flight, commits at +3
        assert tier._owner[qid] == 0 and tier._handoff_pending[qid] == 1
        tier._maybe_handoff(qid, 0)  # swings back pre-commit
        assert qid not in tier._handoff_pending
        # The delayed copy lands now: superseded, ignored — the owner
        # map still holds exactly one entry for the query.
        tier.link.begin_tick(tier._tick + 4)
        assert tier._owner[qid] == 0
        assert qid not in tier._handoff_pending

    def test_delayed_backbone_with_crashes_keeps_single_owner(self):
        spec = SPEC.but(ticks=50, query_speed=90.0)
        fleet, queries = build_workload(spec)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        plan = ShardFaultPlan(
            seed=2, link_delay=2, link_drop=0.3,
            crashes=((0, 18, 28), (3, 30, 40)),
        )
        tier = shard_attach(sim, 2, faults=plan)
        owners_seen = []
        sim.run(spec.ticks, on_tick=lambda s: owners_seen.append(
            dict(s.server._owner)
        ))
        for snapshot in owners_seen:
            for qid, owner in snapshot.items():
                assert 0 <= owner < tier.router.n_shards


class TestFailover:
    def _faulty_run(self, plan, spec=None, shards=2, params=FT_PARAMS):
        spec = spec or SPEC.but(ticks=40)
        ring = RingSink()
        tel = Telemetry(tracer=Tracer(ring))
        fleet, queries = build_workload(spec)
        cfg = RunConfig(
            "DKNN-P",
            record_history=True,
            shard=ShardConfig(shards=shards, faults=plan),
            params=dict(params),
        )
        sim = build_system(cfg, fleet, queries, telemetry=tel)
        sim.run(spec.ticks)
        return sim.server, sim, ring.events()

    def test_crash_triggers_failover_and_restore(self):
        plan = ShardFaultPlan(seed=7, crashes=((0, 10, 22),))
        tier, sim, events = self._faulty_run(plan)
        st = tier.shard_stats
        assert st.failovers >= 1
        assert st.restores >= 1
        assert st.heartbeats > 0
        # Failover fires within the heartbeat timeout of the crash.
        fo = [e for e in events if e.kind == "shard.failover"]
        assert fo and fo[0].fields["shard"] == 0
        assert 10 < fo[0].tick <= 10 + plan.heartbeat_timeout + 2
        rs = [e for e in events if e.kind == "shard.restore"]
        assert rs and rs[0].tick >= 22
        # After the run the failed set is empty again.
        assert not tier._failed and not tier._covered_by

    def test_takeover_moves_queries_and_flags_degraded(self):
        # Crash every shard's cell is impossible; instead crash each
        # shard in turn so whichever owns a query gets hit.
        plan = ShardFaultPlan(
            seed=7, crashes=((0, 10, 20), (1, 10, 20), (2, 10, 20))
        )
        tier, sim, events = self._faulty_run(plan)
        st = tier.shard_stats
        if st.queries_taken_over:
            assert st.failovers >= 1
            # Degraded windows opened and closed with latencies.
            assert st.recovery_latencies
            assert all(t >= 0 for t in st.recovery_latencies)
            recovered = [e for e in events if e.kind == "shard.recovered"]
            assert len(recovered) == len(st.recovery_latencies)

    def test_replication_streams_deltas(self):
        plan = ShardFaultPlan(seed=7, crashes=((0, 12, 20),))
        tier, sim, _ = self._faulty_run(plan)
        link = tier.link
        assert link.sent_by_kind[SHARD_REPLICATE] > 0
        assert tier.shard_stats.replications == (
            link.sent_by_kind[SHARD_REPLICATE]
        )
        # replicate=False isolates detection from replication.
        plan2 = ShardFaultPlan(seed=7, crashes=((0, 12, 20),), replicate=False)
        tier2, _, _ = self._faulty_run(plan2)
        assert tier2.link.sent_by_kind[SHARD_REPLICATE] == 0
        assert tier2.shard_stats.failovers >= 1

    def test_partition_false_suspicion_heals(self):
        # Cut shard 0 from its watcher (buddy 1) long enough to trip
        # the timeout: a failover fires although nothing crashed, and
        # the healed partition restores it via the next heartbeat.
        plan = ShardFaultPlan(seed=7, partitions=((0, 1, 8, 20),))
        tier, sim, events = self._faulty_run(plan)
        st = tier.shard_stats
        assert st.failovers >= 1
        assert st.restores >= 1
        parts = [e for e in events if e.kind == "shard.partition"]
        assert any(e.fields["up"] for e in parts)
        assert any(not e.fields["up"] for e in parts)
        assert not tier._failed

    def test_degraded_fraction_reaches_accuracy_tracker(self):
        spec = SPEC.but(ticks=40)
        plan = ShardFaultPlan(
            seed=7, crashes=((0, 10, 20), (1, 10, 20), (2, 10, 20))
        )
        m = run_once(
            RunConfig(
                "DKNN-P",
                shard=ShardConfig(shards=2, faults=plan),
                params=dict(FT_PARAMS),
            ),
            spec,
            accuracy_every=2,
        )
        if m.extra.get("taken_over"):
            assert m.extra.get("degraded_frac", 0.0) > 0.0
            assert "recovery_ticks" in m.extra


class TestAdmissionControl:
    def test_threshold_sheds_and_flags(self):
        plan = ShardFaultPlan(seed=7, shed_uplinks_per_tick=5)
        fleet, queries = build_workload(SPEC)
        cfg = RunConfig(
            "DKNN-P",
            shard=ShardConfig(shards=2, faults=plan),
            params=dict(FT_PARAMS),
        )
        sim = build_system(cfg, fleet, queries)
        sim.run(SPEC.ticks)
        tier = sim.server
        st = tier.shard_stats
        # 250 objects over 4 shards with threshold 5: constant shedding.
        assert st.shed_uplinks > 0
        # Degraded annotations opened for shed repair traffic, or all
        # shed traffic was position reports (no qid) — either way the
        # tier kept serving.
        assert sum(st.uplinks) > 0

    def test_no_shedding_without_threshold(self):
        plan = ShardFaultPlan(seed=7, link_delay=1)
        fleet, queries = build_workload(SPEC)
        cfg = RunConfig("DKNN-P", shard=ShardConfig(shards=2, faults=plan))
        sim = build_system(cfg, fleet, queries)
        sim.run(SPEC.ticks)
        assert sim.server.shard_stats.shed_uplinks == 0


class TestLegacyKnobsStillWork:
    """The raw link_* knobs of shard_attach keep working (and the plan
    supersedes them when enabled)."""

    def test_plan_supersedes_raw_knobs(self):
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        plan = ShardFaultPlan(seed=9, link_drop=0.25, link_delay=2)
        tier = shard_attach(
            sim, 2, link_drop=0.9, link_delay=7, link_seed=1, faults=plan
        )
        assert tier.link.drop_prob == 0.25
        assert tier.link.delay_ticks == 2

    def test_disabled_plan_defers_to_raw_knobs(self):
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        tier = shard_attach(
            sim, 2, link_drop=0.4, link_delay=3, faults=ShardFaultPlan()
        )
        assert tier.link.drop_prob == 0.4
        assert tier.link.delay_ticks == 3
        assert tier.link.fault_plan is None
