"""The sharded server tier: identity, accounting, ownership, handoff.

The tier's contract has two halves and both are pinned here:

* **Bit-identity** — for every algorithm and every shard grid size,
  with and without a FaultPlan, the sharded run's per-tick answers and
  radio traffic equal the single-server run on the same seed;
* **Real distribution ledger** — routing, query ownership (never two
  owners), handoff under boundary crossings (including over a lossy
  backbone and during radio blackouts), cross-shard borrowing, and the
  separate ``server_to_server`` accounting bucket.
"""

from __future__ import annotations

import pytest

from repro.api import (
    FaultPlan,
    RunConfig,
    ShardConfig,
    ShardedServer,
    ShardRouter,
    WorkloadSpec,
    build_system,
    build_workload,
    shard_attach,
)
from repro.errors import ExperimentError, NetworkError
from repro.geometry import Rect
from repro.net.shardlink import SHARD_HANDOFF, ShardLink
from repro.net.stats import CommStats

SPEC = WorkloadSpec(
    n_objects=250, n_queries=3, k=4, ticks=24, warmup_ticks=4, seed=13
)

FAULTS = FaultPlan(
    seed=5, drop_uplink=0.05, drop_downlink=0.05, dup_prob=0.02,
    delay_prob=0.03,
)

ALGS = ("DKNN-P", "DKNN-B", "DKNN-G")


def _history(algorithm, shards, faults=None, spec=SPEC, params=None):
    fleet, queries = build_workload(spec)
    cfg = RunConfig(
        algorithm,
        record_history=True,
        faults=faults,
        shard=None if shards is None else ShardConfig(shards=shards),
        params=dict(params or {}),
    )
    sim = build_system(cfg, fleet, queries)
    sim.run(spec.ticks)
    hist = {q.qid: sim.server.answer_history[q.qid] for q in queries}
    return hist, sim


class TestRouter:
    UNIVERSE = Rect(0, 0, 1000, 1000)

    def test_cells_tile_the_universe(self):
        router = ShardRouter(self.UNIVERSE, 2)
        assert router.n_shards == 4
        assert router.shard_of(10, 10) == 0
        assert router.shard_of(990, 10) == 1
        assert router.shard_of(10, 990) == 2
        assert router.shard_of(990, 990) == 3
        # Edges (and anything clamped) stay inside the grid.
        assert router.shard_of(1000, 1000) == 3
        assert router.shard_of(-5, 2000) in range(4)

    def test_rect_of_inverts_shard_of(self):
        router = ShardRouter(self.UNIVERSE, 3)
        for sid in range(router.n_shards):
            rect = router.rect_of(sid)
            cx, cy = rect.center
            assert router.shard_of(cx, cy) == sid

    def test_circle_overlap_exact(self):
        router = ShardRouter(self.UNIVERSE, 2)
        assert router.shards_overlapping_circle(250, 250, 100) == [0]
        assert router.shards_overlapping_circle(500, 250, 10) == [0, 1]
        assert router.shards_overlapping_circle(500, 500, 10) == [0, 1, 2, 3]
        # Near the cell corner but outside the circle: corner cells
        # whose nearest point is farther than r are excluded.
        assert router.shards_overlapping_circle(490, 250, 11) == [0, 1]
        assert router.shards_overlapping_circle(490, 250, 9) == [0]

    def test_invalid_grid_rejected(self):
        with pytest.raises(NetworkError):
            ShardRouter(self.UNIVERSE, 0)


class TestBitIdentity:
    """The correctness bar: sharded == single-server, bit for bit."""

    @pytest.mark.parametrize("algorithm", ALGS)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_per_tick_answers_identical(self, algorithm, shards):
        base, base_sim = _history(algorithm, None)
        got, sim = _history(algorithm, shards)
        assert got == base
        radio = sim.channel.stats
        assert radio.total_messages == base_sim.channel.stats.total_messages
        assert radio.total_bytes == base_sim.channel.stats.total_bytes

    @pytest.mark.parametrize("algorithm", ALGS)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_identical_under_faultplan(self, algorithm, shards):
        params = {"fault_tolerant": True} if algorithm == "DKNN-P" else {}
        base, _ = _history(algorithm, None, faults=FAULTS, params=params)
        got, _ = _history(algorithm, shards, faults=FAULTS, params=params)
        assert got == base

    def test_tier_actually_distributes(self):
        _, sim = _history("DKNN-P", 4)
        st = sim.server.shard_stats
        loaded = sum(1 for n in st.uplinks if n > 0)
        assert loaded > 1, "every uplink landed on one shard"
        assert st.migrations > 0
        assert sim.channel.stats.server_to_server_messages > 0


class TestServerToServerBucket:
    """Satellite: backbone traffic never pollutes the radio totals."""

    def test_s1_sharded_equals_unsharded_radio_totals(self):
        _, plain = _history("DKNN-B", None)
        _, s1 = _history("DKNN-B", 1)
        a, b = plain.channel.stats, s1.channel.stats
        assert a.total_messages == b.total_messages
        assert a.total_bytes == b.total_bytes
        assert a.per_kind_table() == b.per_kind_table()
        # One shard: no neighbors, so the backbone is silent too.
        assert b.server_to_server_messages == 0

    def test_s4_backbone_is_its_own_bucket(self):
        _, plain = _history("DKNN-P", None)
        _, s4 = _history("DKNN-P", 4)
        a, b = plain.channel.stats, s4.channel.stats
        assert b.server_to_server_messages > 0
        # ... and the radio side is byte-identical anyway.
        assert a.total_messages == b.total_messages
        assert a.total_bytes == b.total_bytes
        assert a.uplink_messages == b.uplink_messages
        assert a.downlink_messages == b.downlink_messages

    def test_record_and_views(self):
        stats = CommStats()
        stats.record_server_to_server("handoff", 100)
        stats.record_server_to_server("handoff", 50)
        stats.record_server_to_server("borrow", 30)
        assert stats.server_to_server_messages == 3
        assert stats.server_to_server_bytes == 180
        assert stats.total_messages == 0  # radio untouched
        table = stats.server_to_server_table()
        assert table["handoff"] == {"messages": 2, "bytes": 150}

    def test_merge_and_delta(self):
        a, b = CommStats(), CommStats()
        a.record_server_to_server("forward", 40)
        b.record_server_to_server("forward", 60)
        a.merge(b)
        assert a.server_to_server_bytes == 100
        mark = a.snapshot()
        a.record_server_to_server("forward", 10)
        assert a.delta_since(mark).server_to_server_messages == 1


class TestOwnershipAndHandoff:
    def _tier(self, shards=2, ticks=SPEC.ticks, **link_kw):
        fleet, queries = build_workload(SPEC)
        sim = build_system(RunConfig("DKNN-P"), fleet, queries)
        tier = shard_attach(sim, shards, **link_kw)
        sim.run(ticks)
        return tier, sim

    def test_every_query_has_exactly_one_owner(self):
        tier, sim = self._tier(shards=4)
        qids = [spec.qid for spec in tier.inner.queries]
        # _owner is a plain dict keyed by qid: single ownership is
        # structural. What needs checking is total coverage + validity.
        assert sorted(tier._owner) == sorted(qids)
        for owner in tier._owner.values():
            assert 0 <= owner < tier.router.n_shards

    def test_owner_tracks_focal_home(self):
        tier, sim = self._tier(shards=4)
        for spec in tier.inner.queries:
            if spec.qid in tier._handoff_pending:
                continue
            assert tier._owner[spec.qid] == tier._home[spec.focal_oid]

    def test_handoffs_happen_and_commit(self):
        tier, _ = self._tier(shards=4, ticks=60)
        assert tier.shard_stats.handoffs > 0
        assert tier.link.sent_by_kind[SHARD_HANDOFF] >= (
            tier.shard_stats.handoffs
        )
        assert not tier._handoff_pending  # perfect link: all committed

    def test_lossy_backbone_retries_until_committed(self):
        tier, _ = self._tier(
            shards=4, ticks=60, link_drop=0.5, link_seed=3
        )
        # Drops force retransmits; ownership still converges (at most
        # the in-flight tail stays pending at cut-off).
        if tier.shard_stats.handoffs:
            assert tier.link.dropped > 0
        for qid, owner in tier._owner.items():
            assert 0 <= owner < tier.router.n_shards

    def test_delayed_backbone_keeps_single_owner(self):
        tier, _ = self._tier(shards=4, ticks=60, link_delay=2)
        assert sorted(tier._owner) == sorted(
            spec.qid for spec in tier.inner.queries
        )

    def test_double_wrap_rejected(self):
        fleet, queries = build_workload(SPEC)
        sim = build_system(
            RunConfig("DKNN-P", shard=ShardConfig(shards=2)), fleet, queries
        )
        with pytest.raises(NetworkError):
            shard_attach(sim, 2)


class TestHandoffUnderBlackout:
    """Property: a focal crossing shards during a radio blackout still
    re-converges to the exact kNN within the lease bound, and ownership
    stays single throughout."""

    def test_reconverges_within_lease_bound(self):
        lease = 8
        spec = WorkloadSpec(
            n_objects=200,
            n_queries=4,
            k=4,
            ticks=70,
            warmup_ticks=4,
            seed=23,
            query_speed=90.0,  # fast focals: guaranteed crossings
        )
        blackout = (20, 30)
        plan = FaultPlan(
            seed=9,
            blackouts=tuple(
                (oid, blackout[0], blackout[1])
                for oid in range(spec.population)
            ),
        )
        fleet, queries = build_workload(spec)
        cfg = RunConfig(
            "DKNN-P",
            record_history=True,
            faults=plan,
            shard=ShardConfig(shards=3),
            params={"fault_tolerant": True, "lease_ticks": lease},
        )
        sim = build_system(cfg, fleet, queries)

        crossings = []
        owners_seen = []

        def on_tick(s):
            tier = s.server
            owners_seen.append(dict(tier._owner))
            crossings.append(tier.shard_stats.handoffs)

        sim.run(spec.ticks, on_tick=on_tick)
        tier = sim.server

        # The scenario is live: focals crossed shard boundaries, some
        # inside the blackout window.
        assert tier.shard_stats.handoffs > 0, "no boundary crossing"

        # Ownership invariant held on every tick: _owner is one map,
        # and every owner id was always a valid shard.
        for snapshot in owners_seen:
            for owner in snapshot.values():
                assert 0 <= owner < tier.router.n_shards

        # Re-convergence: within lease + retry slack after the blackout
        # lifts, published answers are exact again (and stay exact at
        # the probe ticks we check).
        deadline = blackout[1] + lease + 4
        from repro.index.bruteforce import brute_knn_ids

        replay = {}
        for q in queries:
            for tick, answer in sim.server.answer_history[q.qid]:
                replay.setdefault(tick, {})[q.qid] = answer
        # Rebuild ground truth by re-running the same workload.
        fleet2, _ = build_workload(spec)
        exact_since = None
        for tick in range(1, spec.ticks + 1):
            fleet2.advance()
            if tick < deadline or tick % 2:
                continue
            ok = True
            for q in queries:
                qx, qy = fleet2.positions[q.focal_oid]
                truth = brute_knn_ids(
                    fleet2.positions, qx, qy, q.k, frozenset((q.focal_oid,))
                )
                if sorted(replay[tick][q.qid]) != sorted(truth):
                    ok = False
            if ok and exact_since is None:
                exact_since = tick
        assert exact_since is not None, (
            f"never exact again after blackout + lease (deadline "
            f"{deadline})"
        )


class TestShardLink:
    def test_delivery_and_accounting(self):
        stats = CommStats()
        seen = []
        link = ShardLink(4, stats, seen.append)
        link.send("forward", 0, 3, 16)
        assert len(seen) == 1 and seen[0].size == 24
        assert stats.server_to_server_bytes == 24
        assert link.per_pair_table() == [(0, 3, 1)]

    def test_delay_holds_until_tick(self):
        stats = CommStats()
        seen = []
        link = ShardLink(2, stats, seen.append, delay_ticks=2)
        link.begin_tick(1)
        link.send("migrate", 0, 1, 8)
        assert not seen and link.pending() == 1
        link.begin_tick(2)
        assert not seen
        link.begin_tick(3)
        assert len(seen) == 1

    def test_drop_is_seeded_and_separate(self):
        stats = CommStats()
        seen = []
        link = ShardLink(2, stats, seen.append, drop_prob=0.5, seed=1)
        for _ in range(50):
            link.send("borrow", 0, 1, 4)
        assert link.dropped > 0
        assert len(seen) == 50 - link.dropped
        # Accounting counts sends, not deliveries.
        assert stats.server_to_server_messages == 50

    def test_validation(self):
        stats = CommStats()
        with pytest.raises(NetworkError):
            ShardLink(0, stats, lambda m: None)
        with pytest.raises(NetworkError):
            ShardLink(2, stats, lambda m: None, drop_prob=1.0)
        link = ShardLink(2, stats, lambda m: None)
        with pytest.raises(NetworkError):
            link.send("forward", 0, 5, 4)


class TestFacade:
    def test_api_surface_is_importable_and_complete(self):
        import repro.api as api

        assert api.__all__  # non-empty, explicit
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_sharded_run_through_facade_only(self):
        from repro.api import RunConfig, ShardConfig, WorkloadSpec, run_once

        spec = WorkloadSpec(
            n_objects=120, n_queries=2, k=3, ticks=12, warmup_ticks=2,
            seed=3,
        )
        m = run_once(
            RunConfig("DKNN-B", shard=ShardConfig(shards=2)),
            spec,
            accuracy_every=0,
        )
        assert m.extra["shards"] == 4
        assert "s2s/tick" in m.extra
        assert "shard_imbalance" in m.extra
