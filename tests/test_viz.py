"""Tests for the ASCII world renderer."""

import pytest

from repro.errors import ReproError
from repro.geometry import Rect
from repro.viz import render_query, render_world

UNI = Rect(0, 0, 100, 100)


class TestRenderWorld:
    def test_dimensions(self):
        out = render_world(UNI, [(50.0, 50.0)], width=20, height=10)
        lines = out.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(line) == 22 for line in lines)

    def test_object_glyph_present(self):
        out = render_world(UNI, [(50.0, 50.0)], width=20, height=10)
        assert "." in out

    def test_focal_drawn_on_top(self):
        out = render_world(
            UNI, [(50.0, 50.0), (50.0, 50.0)], focal_ids=[1], width=20,
            height=10,
        )
        assert "Q" in out

    def test_answers_marked(self):
        out = render_world(
            UNI, [(10.0, 10.0), (90.0, 90.0)], answer_ids=[0], width=20,
            height=10,
        )
        assert "*" in out and "." in out

    def test_corners_stay_inside_canvas(self):
        render_world(
            UNI, [(0.0, 0.0), (100.0, 100.0)], width=20, height=10
        )  # must not raise

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ReproError):
            render_world(UNI, [(1.0, 1.0)], width=1, height=10)


class TestRenderQuery:
    POSITIONS = [(50.0, 50.0), (60.0, 50.0), (10.0, 10.0)]

    def test_band_circle_drawn(self):
        out = render_query(
            UNI, self.POSITIONS, focal_oid=0, answer_ids=[1],
            threshold=30.0, anchor=(50.0, 50.0), width=40, height=20,
        )
        assert "o" in out
        assert "Q" in out

    def test_no_threshold_falls_back_to_world(self):
        out = render_query(
            UNI, self.POSITIONS, focal_oid=0, answer_ids=[1], width=40,
            height=20,
        )
        assert "o" not in out

    def test_infinite_threshold_skipped(self):
        out = render_query(
            UNI, self.POSITIONS, focal_oid=0, answer_ids=[1],
            threshold=float("inf"), anchor=(50.0, 50.0), width=40, height=20,
        )
        assert "o" not in out

    def test_live_system_snapshot(self):
        """Render from an actual running DKNN-B system."""
        from repro.core.broadcast_variant import build_broadcast_system
        from repro.workloads import WorkloadSpec, build_workload

        spec = WorkloadSpec(
            n_objects=60, n_queries=1, k=4, seed=81, ticks=10, warmup_ticks=1
        )
        fleet, queries = build_workload(spec)
        sim = build_broadcast_system(fleet, queries)
        sim.run(10)
        q = queries[0]
        st = sim.server._states[q.qid]
        out = render_query(
            fleet.universe,
            fleet.positions,
            focal_oid=q.focal_oid,
            answer_ids=sim.server.answers[q.qid],
            threshold=st.threshold,
            anchor=st.anchor,
        )
        assert "Q" in out and "*" in out
