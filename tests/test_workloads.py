"""Unit tests for workload specs and generation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    MOBILITY_MODELS,
    WorkloadSpec,
    build_workload,
    sweep,
)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        WorkloadSpec()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_objects", 0),
            ("n_queries", 0),
            ("k", 0),
            ("universe_size", 0.0),
            ("query_speed", -1.0),
            ("ticks", 0),
            ("warmup_ticks", -1),
            ("mobility", "teleport"),
        ],
    )
    def test_invalid_fields_raise(self, field, value):
        with pytest.raises(WorkloadError):
            WorkloadSpec(**{field: value})

    def test_warmup_must_be_less_than_ticks(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(ticks=10, warmup_ticks=10)

    def test_speed_range_validated(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(speed_min=10, speed_max=5)

    def test_but_replaces_fields(self):
        spec = WorkloadSpec().but(k=3, n_objects=10)
        assert spec.k == 3 and spec.n_objects == 10
        assert WorkloadSpec().k != 3 or WorkloadSpec().n_objects != 10

    def test_but_revalidates(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec().but(k=0)

    def test_population_and_max_speed(self):
        spec = WorkloadSpec(n_objects=100, n_queries=4, query_speed=120.0)
        assert spec.population == 104
        assert spec.max_speed == 120.0


class TestBuildWorkload:
    def test_fleet_size_and_query_anchors(self):
        spec = WorkloadSpec(n_objects=50, n_queries=3, ticks=10, warmup_ticks=1)
        fleet, queries = build_workload(spec)
        assert fleet.n == 53
        assert [q.focal_oid for q in queries] == [50, 51, 52]
        assert [q.qid for q in queries] == [0, 1, 2]

    def test_static_queries_do_not_move(self):
        spec = WorkloadSpec(
            n_objects=10, n_queries=2, query_speed=0.0, ticks=10, warmup_ticks=1
        )
        fleet, queries = build_workload(spec)
        before = [fleet.position_of(q.focal_oid) for q in queries]
        for _ in range(5):
            fleet.advance()
        after = [fleet.position_of(q.focal_oid) for q in queries]
        assert before == after

    def test_moving_queries_move(self):
        spec = WorkloadSpec(
            n_objects=10, n_queries=2, query_speed=80.0, ticks=10, warmup_ticks=1
        )
        fleet, queries = build_workload(spec)
        before = [fleet.position_of(q.focal_oid) for q in queries]
        for _ in range(5):
            fleet.advance()
        after = [fleet.position_of(q.focal_oid) for q in queries]
        assert before != after

    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(n_objects=20, n_queries=2, ticks=10, warmup_ticks=1)
        f1, _ = build_workload(spec)
        f2, _ = build_workload(spec)
        for _ in range(5):
            f1.advance()
            f2.advance()
        assert f1.positions == f2.positions

    @pytest.mark.parametrize("mobility", MOBILITY_MODELS)
    def test_all_mobility_models_buildable(self, mobility):
        spec = WorkloadSpec(
            n_objects=20, n_queries=1, mobility=mobility, ticks=10, warmup_ticks=1
        )
        fleet, _ = build_workload(spec)
        for _ in range(5):
            fleet.advance()

    def test_mobility_options_forwarded(self):
        spec = WorkloadSpec(
            n_objects=20,
            n_queries=1,
            mobility="gaussian_cluster",
            mobility_options={"n_hotspots": 2, "sigma": 100.0},
            ticks=10,
            warmup_ticks=1,
        )
        fleet, _ = build_workload(spec)
        assert fleet.n == 21


class TestSweep:
    def test_sweep_yields_modified_specs(self):
        base = WorkloadSpec(ticks=10, warmup_ticks=1)
        points = list(sweep(base, "k", [1, 2, 4]))
        assert [v for v, _ in points] == [1, 2, 4]
        assert [s.k for _, s in points] == [1, 2, 4]
        assert all(s.n_objects == base.n_objects for _, s in points)
